//! The self-organization loop (§3.1–§3.2, §4).
//!
//! "Peers responsible for a schema periodically inquire about the
//! connectivity of the mediation layer … ci < 0 … triggers the automatic
//! creation of additional schema mappings to reinforce the existing
//! network. … The quality of the mappings created in this way is
//! periodically assessed … A mapping detected as incorrect is marked as
//! deprecated … The deprecation of mappings fosters the creation of a
//! new topology of mappings, which will ensure the global
//! interoperability of the system eventually."
//!
//! One [`GridVineSystem::self_organization_round`] performs, with full
//! message accounting:
//!
//! 1. every schema's responsible peer republishes its degree record;
//! 2. the domain peer computes the connectivity indicator;
//! 3. if `ci < 0` (or the known graph is not strongly connected), new
//!    automatic mappings are created: candidate schema pairs are found
//!    through shared subject references (triples about the same
//!    sequence co-located at the subject-key peer), their attribute
//!    profiles are fetched from the DHT and matched with the combined
//!    lexical + instance matcher;
//! 4. the Bayesian cycle analysis runs and condemned automatic mappings
//!    are deprecated (their DHT copies refreshed).

use crate::system::{GridVineSystem, SystemError};
use gridvine_pgrid::PeerId;
use gridvine_semantic::{
    apply_assessment, assess, compose_path, find_path, match_profiles, BayesConfig, Correspondence,
    MappingId, MappingKind, MatcherConfig, Provenance, Schema, SchemaId, SchemaProfile,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Self-organization tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfOrgConfig {
    pub matcher: MatcherConfig,
    pub bayes: BayesConfig,
    /// Cap on new automatic mappings per round.
    pub max_new_mappings: usize,
    /// Probability that a created correspondence is corrupted (models
    /// matcher noise; drives the deprecation experiment E5).
    pub error_rate: f64,
    /// When a mapping is deprecated and an alternative active path
    /// between its endpoints exists, register the composition of that
    /// path as a direct replacement mapping — the §4 "deprecated …
    /// gradually replaced by other mapping paths" behaviour. Off by
    /// default so the base experiments measure pure matcher-driven
    /// recovery.
    pub repair_with_composition: bool,
}

impl Default for SelfOrgConfig {
    fn default() -> Self {
        SelfOrgConfig {
            matcher: MatcherConfig::default(),
            bayes: BayesConfig::default(),
            max_new_mappings: 4,
            error_rate: 0.0,
            repair_with_composition: false,
        }
    }
}

/// What one round did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundReport {
    /// Connectivity indicator observed at the start of the round.
    pub ci: f64,
    /// Ground truth at the end of the round.
    pub strongly_connected: bool,
    pub largest_scc_fraction: f64,
    /// Mappings created this round.
    pub created: Vec<MappingId>,
    /// Mappings deprecated this round.
    pub deprecated: Vec<MappingId>,
    /// Replacement mappings registered by composing alternative active
    /// paths between the endpoints of deprecated mappings (empty unless
    /// [`SelfOrgConfig::repair_with_composition`] is set).
    pub composed: Vec<MappingId>,
    /// Overlay messages the round consumed.
    pub messages: u64,
    /// Active mappings after the round.
    pub active_mappings: usize,
}

impl GridVineSystem {
    /// Candidate schema pairs discovered from shared subject
    /// references: for every subject-key peer, subjects whose triples
    /// carry predicates from two different schemas vote for that pair.
    /// Returns unconnected pairs sorted by decreasing shared-subject
    /// count.
    pub fn discover_candidates(&self) -> Vec<(SchemaId, SchemaId, usize)> {
        let mut pair_counts: BTreeMap<(SchemaId, SchemaId), BTreeSet<String>> = BTreeMap::new();
        for i in 0..self.topology().len() {
            let peer = PeerId::from_index(i);
            let view = self.overlay().view(peer);
            // subject → set of schemas seen, read from the peer's
            // indexed `DB_p` (the only triple storage). A peer holds
            // copies for all three of a triple's keys; only the
            // subject-indexed copy votes, i.e. triples whose subject
            // key this peer is responsible for.
            let mut by_subject: BTreeMap<&str, BTreeSet<SchemaId>> = BTreeMap::new();
            for t in self.peer_db(peer).iter_refs() {
                // Predicates that name no schema cannot vote at all.
                let Some((schema, _)) = Schema::split_predicate_str(t.predicate) else {
                    continue;
                };
                by_subject.entry(t.subject).or_default().insert(schema);
            }
            // One subject hash per *distinct* subject (a subject's facts
            // share the key): keep only subject-indexed copies, i.e.
            // subjects whose key this peer is responsible for — the
            // predicate- and object-indexed copies must not vote.
            by_subject.retain(|subject, _| view.is_responsible(&self.key_of(subject)));
            for (subject, schemas) in by_subject {
                let v: Vec<&SchemaId> = schemas.iter().collect();
                for a in 0..v.len() {
                    for b in a + 1..v.len() {
                        let (x, y) = if v[a] <= v[b] {
                            (v[a], v[b])
                        } else {
                            (v[b], v[a])
                        };
                        pair_counts
                            .entry((x.clone(), y.clone()))
                            .or_default()
                            .insert(subject.to_string());
                    }
                }
            }
        }
        let mut out: Vec<(SchemaId, SchemaId, usize)> = pair_counts
            .into_iter()
            .filter(|((a, b), _)| !self.registry().connected_directly(a, b))
            .map(|((a, b), subjects)| (a, b, subjects.len()))
            .collect();
        out.sort_by(|x, y| y.2.cmp(&x.2).then_with(|| (&x.0, &x.1).cmp(&(&y.0, &y.1))));
        out
    }

    /// Build a schema's observable profile from the network: one
    /// `Retrieve(Hash(schema#attr))` per attribute (messages counted).
    /// The destination peer answers from its indexed `DB_p` — it is
    /// responsible for the predicate's key, so its posting list holds
    /// every triple carrying that predicate (and, unlike the old bucket
    /// read, hash collisions with other values never surface).
    pub fn build_profile(
        &mut self,
        origin: PeerId,
        schema: &SchemaId,
    ) -> Result<SchemaProfile, SystemError> {
        let mut profile = SchemaProfile::new(schema.clone());
        let attrs: Vec<String> = self
            .registry()
            .schema(schema)
            .map(|s| s.attributes().to_vec())
            .unwrap_or_default();
        for attr in attrs {
            let predicate = format!("{schema}#{attr}");
            let key = self.key_of(&predicate);
            let dest = self.route_retrieve(origin, &key)?;
            for t in self
                .peer_db(dest)
                .select_eq_rows(gridvine_rdf::Position::Predicate, &predicate)
                .refs()
            {
                if let Some(acc) = t.subject.strip_prefix("seq:") {
                    profile.observe(attr.clone(), acc, t.object);
                }
            }
        }
        Ok(profile)
    }

    /// One full self-organization round.
    pub fn self_organization_round(
        &mut self,
        cfg: &SelfOrgConfig,
    ) -> Result<RoundReport, SystemError> {
        let before = self.messages_sent();
        let monitor = self.random_peer();

        // 1–2: publish degree records, read back the indicator.
        self.publish_connectivity(monitor)?;
        let ci = self.connectivity_indicator(monitor)?;

        // 3: create mappings when connectivity is insufficient.
        let mut created = Vec::new();
        let needs_mappings = ci < 0.0 || !self.registry().is_strongly_connected();
        if needs_mappings {
            let candidates = self.discover_candidates();
            for (a, b, _shared) in candidates.into_iter().take(cfg.max_new_mappings) {
                let pa = self.build_profile(monitor, &a)?;
                let pb = self.build_profile(monitor, &b)?;
                let scored = match_profiles(&pa, &pb, &cfg.matcher);
                if scored.is_empty() {
                    continue;
                }
                let correspondences: Vec<Correspondence> = scored
                    .into_iter()
                    .map(|s| self.maybe_corrupt(&b, s.correspondence, cfg.error_rate))
                    .collect();
                let id = self.insert_mapping(
                    monitor,
                    a,
                    b,
                    MappingKind::Equivalence,
                    Provenance::Automatic,
                    correspondences,
                )?;
                created.push(id);
            }
        }

        // 4: Bayesian assessment + deprecation (DHT copies refreshed).
        let old: BTreeMap<MappingId, gridvine_semantic::Mapping> = self
            .registry()
            .active_mappings()
            .map(|m| (m.id, m.clone()))
            .collect();
        let assessment = assess(self.registry(), &cfg.bayes);
        let deprecated = apply_assessment(self.registry_mut(), &assessment, &cfg.bayes);
        for (id, old_mapping) in old {
            let changed = self
                .registry()
                .mapping(id)
                .map(|m| {
                    m.status != old_mapping.status || (m.quality - old_mapping.quality).abs() > 1e-3
                })
                .unwrap_or(false);
            if changed {
                self.refresh_mapping(monitor, id, &old_mapping)?;
            }
        }

        // 5 (optional): replace deprecated mappings by composing the
        // surviving path between their endpoints. All deprecated
        // mappings are considered, not only this round's — a pair whose
        // replacement path only appears later still gets healed
        // ("gradually replaced … eventually", §3.2/§4); once a direct
        // active mapping covers the pair, it is skipped, so repair is
        // idempotent.
        let mut composed = Vec::new();
        if cfg.repair_with_composition {
            let broken_pairs: Vec<(SchemaId, SchemaId)> = self
                .registry()
                .mappings()
                .filter(|m| !m.is_active())
                .map(|m| (m.source.clone(), m.target.clone()))
                .collect();
            for (source, target) in broken_pairs {
                if self.registry().connected_directly(&source, &target) {
                    continue; // a direct active mapping covers the pair
                }
                let Some(path) = find_path(self.registry(), &source, &target) else {
                    continue;
                };
                let Some(c) = compose_path(self.registry(), &path) else {
                    continue;
                };
                let new_id = self.insert_mapping(
                    monitor,
                    c.source,
                    c.target,
                    c.kind,
                    Provenance::Automatic,
                    c.correspondences,
                )?;
                // Carry the composite's degraded confidence into the
                // registry and its DHT copies.
                let old = self.registry().mapping(new_id).expect("just added").clone();
                self.registry_mut()
                    .mapping_mut(new_id)
                    .expect("exists")
                    .quality = c.quality;
                self.refresh_mapping(monitor, new_id, &old)?;
                composed.push(new_id);
            }
        }

        Ok(RoundReport {
            ci,
            strongly_connected: self.registry().is_strongly_connected(),
            largest_scc_fraction: self.registry().largest_scc_fraction(),
            created,
            deprecated,
            composed,
            messages: self.messages_sent() - before,
            active_mappings: self.registry().active_count(),
        })
    }

    /// With probability `error_rate`, corrupt a correspondence by
    /// retargeting it to a random different attribute of the target
    /// schema — the "erroneous mapping" injection of the demo script.
    fn maybe_corrupt(
        &mut self,
        target: &SchemaId,
        c: Correspondence,
        error_rate: f64,
    ) -> Correspondence {
        if error_rate <= 0.0 {
            return c;
        }
        let roll: f64 = self.rng_mut().gen();
        if roll >= error_rate {
            return c;
        }
        let attrs: Vec<String> = self
            .registry()
            .schema(target)
            .map(|s| {
                s.attributes()
                    .iter()
                    .filter(|a| **a != c.target_attr)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        if attrs.is_empty() {
            return c;
        }
        let pick = self.rng_mut().gen_range(0..attrs.len());
        Correspondence::new(c.source_attr, attrs[pick].clone())
    }
}

#[cfg(test)]
mod tests {
    // The legacy shims stay under test here; the equivalence suite
    // proves they match the executor.

    use super::*;
    use crate::system::GridVineConfig;
    use gridvine_workload::{recall, QueryConfig, QueryGenerator, Workload, WorkloadConfig};

    /// Load a small corpus into a system, seeding only `seed_mappings`
    /// manual mappings (a sparse network, as the demo starts with).
    fn load(seed_mappings: usize) -> (GridVineSystem, Workload) {
        let w = Workload::generate(WorkloadConfig::small(11));
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        for s in &w.schemas {
            sys.insert_schema(p0, s.clone()).unwrap();
        }
        for s in &w.schemas {
            for t in w.triples_of(s.id()) {
                sys.insert_triple(p0, t).unwrap();
            }
        }
        // Seed a chain of manual mappings over the first few schemas.
        for i in 0..seed_mappings.min(w.schemas.len() - 1) {
            let a = w.schemas[i].id().clone();
            let b = w.schemas[i + 1].id().clone();
            let corrs = w.ground_truth.correct_pairs(&a, &b);
            sys.insert_mapping(
                p0,
                a,
                b,
                MappingKind::Equivalence,
                Provenance::Manual,
                corrs,
            )
            .unwrap();
        }
        (sys, w)
    }

    #[test]
    fn candidates_come_from_shared_subjects() {
        let (sys, w) = load(0);
        let candidates = sys.discover_candidates();
        assert!(!candidates.is_empty());
        // Every candidate pair really shares entities in the corpus.
        for (a, b, n) in &candidates {
            let shared = w.shared_entities(a, b);
            assert!(*n > 0 && !shared.is_empty(), "{a} {b}");
        }
    }

    #[test]
    fn connected_pairs_are_not_candidates() {
        let (sys, _) = load(3);
        let connected: Vec<(SchemaId, SchemaId)> = sys
            .registry()
            .active_mappings()
            .map(|m| (m.source.clone(), m.target.clone()))
            .collect();
        let candidates = sys.discover_candidates();
        for (a, b) in connected {
            assert!(
                !candidates
                    .iter()
                    .any(|(x, y, _)| (x, y) == (&a, &b) || (x, y) == (&b, &a)),
                "{a}→{b} already connected"
            );
        }
    }

    #[test]
    fn profiles_built_from_dht_match_workload() {
        let (mut sys, w) = load(0);
        let schema = w.schemas[0].id().clone();
        let from_dht = sys.build_profile(PeerId(5), &schema).unwrap();
        let direct = w.profile_of(&schema);
        assert_eq!(from_dht.attributes.len(), direct.attributes.len());
        for (attr, vals) in &direct.attributes {
            assert_eq!(
                from_dht.attributes.get(attr),
                Some(vals),
                "attribute {attr} differs"
            );
        }
    }

    #[test]
    fn rounds_create_mappings_and_raise_recall() {
        let (mut sys, w) = load(1);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let fig2 = gen.figure2();

        let before = sys
            .execute(
                PeerId(2),
                &crate::plan::QueryPlan::search(fig2.query.clone()),
                &crate::exec::QueryOptions::default(),
            )
            .unwrap();
        let recall_before = recall(&before.accessions(), &fig2.true_answers);

        let cfg = SelfOrgConfig {
            max_new_mappings: 6,
            ..SelfOrgConfig::default()
        };
        let mut reports = Vec::new();
        for _ in 0..6 {
            reports.push(sys.self_organization_round(&cfg).unwrap());
        }
        let created: usize = reports.iter().map(|r| r.created.len()).sum();
        assert!(created > 0, "rounds must create mappings: {reports:?}");

        let after = sys
            .execute(
                PeerId(2),
                &crate::plan::QueryPlan::search(fig2.query.clone()),
                &crate::exec::QueryOptions::default(),
            )
            .unwrap();
        let recall_after = recall(&after.accessions(), &fig2.true_answers);
        assert!(
            recall_after >= recall_before,
            "recall {recall_before} → {recall_after} must not drop"
        );
        assert!(
            recall_after > 0.5,
            "self-organization should integrate most sources: {recall_after}"
        );
        // Connectivity improves.
        let last = reports.last().unwrap();
        assert!(last.largest_scc_fraction >= reports[0].largest_scc_fraction);
    }

    #[test]
    fn erroneous_mapping_gets_deprecated_by_rounds() {
        // Seed a correct manual chain S0—S1—S2—S3, then inject one bad
        // automatic mapping S0→S2 whose correspondences are a
        // derangement of the correct ones: compositions around the
        // S0→S2→S1→S0 cycle survive but return the wrong attribute,
        // which is exactly what the Bayesian cycle analysis punishes.
        let (mut sys, w) = load(3);
        let a = w.schemas[0].id().clone();
        let c = w.schemas[2].id().clone();
        let mut corrs = w.ground_truth.correct_pairs(&a, &c);
        assert!(corrs.len() >= 2, "need ≥2 shared concepts to derange");
        let rotated_targets: Vec<String> = {
            let mut t: Vec<String> = corrs.iter().map(|x| x.target_attr.clone()).collect();
            t.rotate_left(1);
            t
        };
        for (corr, wrong) in corrs.iter_mut().zip(rotated_targets) {
            corr.target_attr = wrong;
        }
        let bad = sys
            .insert_mapping(
                PeerId(0),
                a,
                c,
                MappingKind::Equivalence,
                Provenance::Automatic,
                corrs,
            )
            .unwrap();

        let clean = SelfOrgConfig::default();
        let mut deprecated_ids = Vec::new();
        for _ in 0..6 {
            let r = sys.self_organization_round(&clean).unwrap();
            deprecated_ids.extend(r.deprecated);
        }
        assert!(
            deprecated_ids.contains(&bad),
            "the deranged mapping must be deprecated: {deprecated_ids:?}"
        );
        assert!(!sys.registry().mapping(bad).unwrap().is_active());
        // Manual chain mappings survive.
        for m in sys
            .registry()
            .mappings()
            .filter(|m| m.provenance == Provenance::Manual)
        {
            assert!(m.is_active(), "{:?} wrongly deprecated", m.id);
        }
    }

    #[test]
    fn deprecated_mapping_is_replaced_by_composed_path() {
        // Same derangement setup as above, but with composition repair
        // enabled: once the bad S0→S2 chord is deprecated, the round
        // must register a *correct* replacement composed from the
        // manual S0→S1→S2 path (§4: deprecated mappings "are gradually
        // replaced by other mapping paths").
        let (mut sys, w) = load(3);
        let a = w.schemas[0].id().clone();
        let c = w.schemas[2].id().clone();
        let mut corrs = w.ground_truth.correct_pairs(&a, &c);
        assert!(corrs.len() >= 2);
        let rotated: Vec<String> = {
            let mut t: Vec<String> = corrs.iter().map(|x| x.target_attr.clone()).collect();
            t.rotate_left(1);
            t
        };
        for (corr, wrong) in corrs.iter_mut().zip(rotated) {
            corr.target_attr = wrong;
        }
        let bad = sys
            .insert_mapping(
                PeerId(0),
                a.clone(),
                c.clone(),
                MappingKind::Equivalence,
                Provenance::Automatic,
                corrs,
            )
            .unwrap();

        let cfg = SelfOrgConfig {
            repair_with_composition: true,
            ..SelfOrgConfig::default()
        };
        let mut composed_ids = Vec::new();
        for _ in 0..6 {
            let r = sys.self_organization_round(&cfg).unwrap();
            composed_ids.extend(r.composed);
            if !composed_ids.is_empty() {
                break;
            }
        }
        assert!(!sys.registry().mapping(bad).unwrap().is_active());
        assert!(!composed_ids.is_empty(), "a replacement must be composed");
        let replacement = sys.registry().mapping(composed_ids[0]).unwrap();
        assert_eq!((&replacement.source, &replacement.target), (&a, &c));
        assert!(replacement.is_active());
        // The replacement's correspondences are the ground-truth ones
        // (composed from two correct manual mappings).
        for corr in &replacement.correspondences {
            assert!(
                w.ground_truth.is_correct(&a, &c, corr),
                "composed correspondence {corr:?} must be correct"
            );
        }
        // Confidence is the product along the path, never above manual.
        assert!(replacement.quality <= 1.0);
    }

    #[test]
    fn round_reports_account_messages() {
        let (mut sys, _) = load(1);
        let cfg = SelfOrgConfig::default();
        let r = sys.self_organization_round(&cfg).unwrap();
        assert!(r.messages > 0);
        assert!(r.active_mappings >= 1);
    }
}
