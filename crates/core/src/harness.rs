//! The asynchronous deployment harness: GridVine over the event-driven
//! simulator.
//!
//! Reproduces the §2.3 deployment: "340 machines scattered around the
//! world sharing 17000 triples … 40% of the 23000 triple pattern queries
//! we submitted were answered within one second only, and 75% within
//! five seconds."
//!
//! The harness builds a P-Grid topology over `n` simulated machines,
//! preloads triples through the replica-aware stores, then submits a
//! query workload with Poisson arrivals. Each query routes to
//! `Hash(routing constant)` through the asynchronous protocol
//! ([`gridvine_pgrid::proto`]) and the matching results return to the
//! origin; end-to-end latencies feed a [`Cdf`].

use crate::item::{KeySpace, MediationItem};
use gridvine_netsim::rng;
use gridvine_netsim::{Cdf, Network, NetworkConfig, NodeId, SimDuration, SimTime};
use gridvine_pgrid::proto::{PGridMsg, PGridNode, Status};
use gridvine_pgrid::{HashKind, KeyHasher, Topology};
use gridvine_rdf::{Binding, ConjunctiveQuery, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Mapping, Schema, SchemaId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Deployment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Machines in the deployment (the paper used 340).
    pub peers: usize,
    pub refs_per_level: usize,
    pub key_depth: usize,
    pub hash: HashKind,
    /// Network model (the paper's machines were "scattered around the
    /// world" — use [`NetworkConfig::planetlab`]).
    pub network: NetworkConfig,
    /// Per-request timeout.
    pub timeout: SimDuration,
    /// Mean query inter-arrival time across the whole network.
    pub mean_interarrival: SimDuration,
    pub seed: u64,
}

impl DeploymentConfig {
    /// The paper's deployment: 340 machines, 2007-era wide-area
    /// latencies with heavy per-node heterogeneity.
    pub fn paper(seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            peers: 340,
            refs_per_level: 3,
            key_depth: 24,
            hash: HashKind::OrderPreserving,
            network: NetworkConfig::planetlab_2007(),
            timeout: SimDuration::from_secs(60),
            mean_interarrival: SimDuration::from_millis(40),
            seed,
        }
    }
}

/// Result of a query batch run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// Latency CDF over answered queries.
    pub latencies: Cdf,
    pub submitted: usize,
    pub answered: usize,
    pub not_found: usize,
    pub timed_out: usize,
    /// Mean overlay hops among answered queries.
    pub mean_hops: f64,
    /// Total messages the network carried during the batch.
    pub messages: u64,
    /// Simulated time the batch took.
    pub wall: SimDuration,
}

/// GridVine deployed over the discrete-event simulator.
pub struct Deployment {
    config: DeploymentConfig,
    topology: Topology,
    net: Network<PGridNode<MediationItem>, PGridMsg<MediationItem>>,
    hasher: Box<dyn KeyHasher + Send + Sync>,
    rng: rand::rngs::StdRng,
}

impl Deployment {
    /// Build the network; all peers start live.
    pub fn new(config: DeploymentConfig) -> Deployment {
        let mut seed_rng = rng::derive(config.seed, 0xDEB);
        let topology = Topology::balanced(config.peers, config.refs_per_level, &mut seed_rng);
        debug_assert!(topology.validate().is_ok());
        let mut net = Network::new(config.network.clone(), config.seed);
        for i in 0..config.peers {
            net.add_node(PGridNode::from_topology(&topology, i, config.timeout));
        }
        Deployment {
            hasher: config.hash.build(),
            topology,
            net,
            rng: rng::derive(config.seed, 0xF00D),
            config,
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn network(&self) -> &Network<PGridNode<MediationItem>, PGridMsg<MediationItem>> {
        &self.net
    }

    pub fn network_mut(
        &mut self,
    ) -> &mut Network<PGridNode<MediationItem>, PGridMsg<MediationItem>> {
        &mut self.net
    }

    fn keyspace(&self) -> KeySpace<'_> {
        KeySpace::new(self.hasher.as_ref(), self.config.key_depth)
    }

    /// Preload triples directly into the responsible peers' stores
    /// (including replicas), as a completed bulk load would leave them.
    /// Returns the number of (key, triple) placements.
    pub fn preload(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        let mut placements = 0;
        let keys: Vec<_> = triples
            .into_iter()
            .map(|t| {
                let ks = self.keyspace();
                let keys = ks.triple_keys(&t);
                (t, keys)
            })
            .collect();
        for (t, keys) in keys {
            for key in keys {
                for p in self.topology.responsible(&key).to_vec() {
                    self.net
                        .node_mut(NodeId::from_index(p.index()))
                        .store_mut()
                        .insert(key.clone(), MediationItem::Triple(t.clone()));
                    placements += 1;
                }
            }
        }
        placements
    }

    /// Submit a batch of single-pattern queries with exponential
    /// inter-arrival times from uniformly random origins, run the
    /// simulation to completion, and collect the latency CDF.
    ///
    /// Each query routes to its routing-constant key; the responsible
    /// peer returns everything stored there and the origin filters with
    /// the pattern (counted as answered when ≥1 result matches, as the
    /// paper counts answered queries).
    pub fn run_queries(&mut self, queries: &[TriplePatternQuery]) -> BatchReport {
        // Schedule submissions.
        let mut submit_at = SimTime::ZERO;
        let rate = 1.0 / self.config.mean_interarrival.as_secs_f64().max(1e-9);
        let mut expected: BTreeMap<(usize, u64), usize> = BTreeMap::new();
        let mut skipped = 0usize;
        let start = self.net.now();
        let base_messages = self.net.stats().sent;

        for (qi, q) in queries.iter().enumerate() {
            let Some((_, term)) = q.pattern.routing_constant() else {
                skipped += 1;
                continue;
            };
            let key = self.keyspace().key_of(term.lexical());
            let origin = self.rng.gen_range(0..self.config.peers);
            let gap = rng::exponential(&mut self.rng, rate);
            submit_at += SimDuration::from_secs_f64(gap);
            // Advance the simulation to the submission instant, then
            // inject the query.
            self.net.run_until(start + (submit_at - SimTime::ZERO));
            let node_id = NodeId::from_index(origin);
            let key_clone = key.clone();
            let req = self.net.invoke(node_id, move |node, ctx| {
                node.start_retrieve(ctx, key_clone)
            });
            expected.insert((origin, req), qi);
        }
        // Drain everything (responses + timeouts).
        self.net.run_until_quiescent();

        // Collect outcomes.
        let mut latencies = Cdf::new();
        let mut answered = 0;
        let mut not_found = 0;
        let mut timed_out = 0;
        let mut hops_sum = 0u64;
        for i in 0..self.config.peers {
            for o in self.net.node_mut(NodeId::from_index(i)).drain_completed() {
                let Some(&qi) = expected.get(&(i, o.id)) else {
                    continue;
                };
                let q = &queries[qi];
                match o.status {
                    Status::TimedOut => timed_out += 1,
                    Status::Ok | Status::NotFound => {
                        // Origin-side filtering with the full pattern.
                        let hits = o
                            .values
                            .iter()
                            .filter_map(|item| match item {
                                MediationItem::Triple(t) => q.pattern.match_triple(t),
                                _ => None,
                            })
                            .count();
                        if hits > 0 {
                            answered += 1;
                            hops_sum += o.hops as u64;
                            latencies.record_duration(o.latency());
                        } else {
                            not_found += 1;
                        }
                    }
                }
            }
        }

        BatchReport {
            latencies,
            submitted: queries.len() - skipped,
            answered,
            not_found,
            timed_out,
            mean_hops: if answered > 0 {
                hops_sum as f64 / answered as f64
            } else {
                0.0
            },
            messages: self.net.stats().sent - base_messages,
            wall: self.net.now().saturating_since(start),
        }
    }
}

/// Result of a reformulated-query batch over the wide-area simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReformulatedBatchReport {
    /// End-to-end latency CDF over answered queries. A query's latency
    /// is the longest reformulation chain it waited for: mapping-fetch
    /// latencies accumulate along the chain, plus the final data lookup.
    pub latencies: Cdf,
    pub submitted: usize,
    /// Queries with ≥ 1 matching result (across all reformulations).
    pub answered: usize,
    /// Queries whose predicate named no schema (not disseminated).
    pub skipped: usize,
    /// Total schema-key retrieves (mapping discovery).
    pub mapping_fetches: usize,
    /// Total data-key retrieves (original + reformulated patterns).
    pub data_lookups: usize,
    /// Requests lost to timeouts across the batch.
    pub timed_out: usize,
    /// Mean schemas reached per submitted query.
    pub mean_schemas: f64,
    /// Total messages the network carried during the batch.
    pub messages: u64,
}

/// Work attached to one in-flight retrieve of the reformulation driver.
enum PendingWork {
    /// `Retrieve(Hash(schema))` — mapping discovery for one chain.
    SchemaFetch {
        query: usize,
        schema: SchemaId,
        q: TriplePatternQuery,
        accum: SimDuration,
        depth: usize,
    },
    /// `Retrieve(Hash(routing constant))` — answer one reformulation.
    DataLookup {
        query: usize,
        q: TriplePatternQuery,
        accum: SimDuration,
    },
}

/// Per-query progress of the reformulation driver.
struct QueryTrack {
    origin: usize,
    visited: BTreeSet<SchemaId>,
    hits: usize,
    max_latency: SimDuration,
}

impl Deployment {
    /// Place schema definitions and mappings at their overlay key
    /// spaces (including replicas), as completed `Update(Schema)` /
    /// `Update(Schema Mapping)` operations would leave them (§2.2, §3).
    pub fn preload_mediation<'m>(
        &mut self,
        schemas: impl IntoIterator<Item = Schema>,
        mappings: impl IntoIterator<Item = &'m Mapping>,
    ) -> usize {
        let mut placements = 0;
        let schema_items: Vec<(gridvine_pgrid::BitString, MediationItem)> = schemas
            .into_iter()
            .map(|s| (self.keyspace().schema_key(&s), MediationItem::Schema(s)))
            .collect();
        let mapping_items: Vec<(gridvine_pgrid::BitString, MediationItem)> = mappings
            .into_iter()
            .flat_map(|m| {
                self.keyspace()
                    .mapping_keys(m)
                    .into_iter()
                    .map(|(key, at_source)| {
                        (
                            key,
                            MediationItem::Mapping {
                                mapping: m.clone(),
                                at_source,
                            },
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (key, item) in schema_items.into_iter().chain(mapping_items) {
            for p in self.topology.responsible(&key).to_vec() {
                self.net
                    .node_mut(NodeId::from_index(p.index()))
                    .store_mut()
                    .insert(key.clone(), item.clone());
                placements += 1;
            }
        }
        placements
    }

    /// Submit a retrieve and register its driver work.
    fn submit_retrieve(
        &mut self,
        origin: usize,
        key: gridvine_pgrid::BitString,
        work: PendingWork,
        pending: &mut BTreeMap<(usize, u64), PendingWork>,
    ) {
        let node = NodeId::from_index(origin);
        let req = self
            .net
            .invoke(node, move |n, ctx| n.start_retrieve(ctx, key));
        pending.insert((origin, req), work);
    }

    /// Disseminate each query through the mapping network over the
    /// event-driven deployment, iterative strategy (§4): the origin
    /// fetches the source schema's mappings from the DHT, reformulates
    /// locally, issues one data lookup per reachable schema, and fetches
    /// the next schemas' mapping lists to go deeper (up to `ttl`
    /// mapping applications).
    ///
    /// Latency accounting is per chain: a reformulated lookup only
    /// starts after every mapping fetch on its chain completed, so its
    /// end-to-end latency is the sum of those fetch latencies plus its
    /// own; the query's reported latency is the maximum over its chains
    /// (the moment the last result arrived).
    pub fn run_reformulated_queries(
        &mut self,
        queries: &[TriplePatternQuery],
        ttl: usize,
    ) -> ReformulatedBatchReport {
        let base_messages = self.net.stats().sent;
        let mut pending: BTreeMap<(usize, u64), PendingWork> = BTreeMap::new();
        let mut tracks: Vec<QueryTrack> = Vec::with_capacity(queries.len());
        let mut skipped = 0usize;
        let mut mapping_fetches = 0usize;
        let mut data_lookups = 0usize;
        let mut timed_out = 0usize;

        for (qi, q) in queries.iter().enumerate() {
            let origin = self.rng.gen_range(0..self.config.peers);
            let mut track = QueryTrack {
                origin,
                visited: BTreeSet::new(),
                hits: 0,
                max_latency: SimDuration::ZERO,
            };
            let Ok((schema, _)) = gridvine_semantic::query_schema(q) else {
                skipped += 1;
                tracks.push(track);
                continue;
            };
            track.visited.insert(schema.clone());
            // Answer in the query's own vocabulary…
            if let Some((_, term)) = q.pattern.routing_constant() {
                let key = self.keyspace().key_of(term.lexical());
                data_lookups += 1;
                self.submit_retrieve(
                    origin,
                    key,
                    PendingWork::DataLookup {
                        query: qi,
                        q: q.clone(),
                        accum: SimDuration::ZERO,
                    },
                    &mut pending,
                );
            }
            // …and start discovering mappings.
            if ttl > 0 {
                let key = self.keyspace().key_of(schema.as_str());
                mapping_fetches += 1;
                self.submit_retrieve(
                    origin,
                    key,
                    PendingWork::SchemaFetch {
                        query: qi,
                        schema,
                        q: q.clone(),
                        accum: SimDuration::ZERO,
                        depth: 0,
                    },
                    &mut pending,
                );
            }
            tracks.push(track);
        }

        // Drive the phases until no chain has work left.
        while !pending.is_empty() {
            self.net.run_until_quiescent();
            let mut completions: Vec<(usize, gridvine_pgrid::proto::Outcome<MediationItem>)> =
                Vec::new();
            for i in 0..self.config.peers {
                for o in self.net.node_mut(NodeId::from_index(i)).drain_completed() {
                    completions.push((i, o));
                }
            }
            for (node_i, o) in completions {
                let Some(work) = pending.remove(&(node_i, o.id)) else {
                    continue;
                };
                if o.status == Status::TimedOut {
                    timed_out += 1;
                    continue;
                }
                match work {
                    PendingWork::DataLookup { query, q, accum } => {
                        let hits = o
                            .values
                            .iter()
                            .filter_map(|item| match item {
                                MediationItem::Triple(t) => q.pattern.match_triple(t),
                                _ => None,
                            })
                            .count();
                        if hits > 0 {
                            let track = &mut tracks[query];
                            track.hits += hits;
                            track.max_latency = track.max_latency.max(accum + o.latency());
                        }
                    }
                    PendingWork::SchemaFetch {
                        query,
                        schema,
                        q,
                        accum,
                        depth,
                    } => {
                        let chain_accum = accum + o.latency();
                        // Mappings stored at this schema's key space;
                        // dedupe by id (bidirectional copies).
                        let mut seen_ids = BTreeSet::new();
                        let mappings: Vec<Mapping> = o
                            .values
                            .iter()
                            .filter_map(|item| match item {
                                MediationItem::Mapping { mapping, .. } => {
                                    seen_ids.insert(mapping.id).then(|| mapping.clone())
                                }
                                _ => None,
                            })
                            .collect();
                        for m in mappings {
                            let Some(dir) = m.applicable_from(&schema) else {
                                continue;
                            };
                            let dest = m.destination(dir).clone();
                            if tracks[query].visited.contains(&dest) {
                                continue;
                            }
                            let Some(nq) = crate::system::apply_mapping(&q, &m, dir) else {
                                continue;
                            };
                            tracks[query].visited.insert(dest.clone());
                            let origin = tracks[query].origin;
                            if let Some((_, term)) = nq.pattern.routing_constant() {
                                let key = self.keyspace().key_of(term.lexical());
                                data_lookups += 1;
                                self.submit_retrieve(
                                    origin,
                                    key,
                                    PendingWork::DataLookup {
                                        query,
                                        q: nq.clone(),
                                        accum: chain_accum,
                                    },
                                    &mut pending,
                                );
                            }
                            if depth + 1 < ttl {
                                let key = self.keyspace().key_of(dest.as_str());
                                mapping_fetches += 1;
                                self.submit_retrieve(
                                    origin,
                                    key,
                                    PendingWork::SchemaFetch {
                                        query,
                                        schema: dest,
                                        q: nq,
                                        accum: chain_accum,
                                        depth: depth + 1,
                                    },
                                    &mut pending,
                                );
                            }
                        }
                    }
                }
            }
        }

        let mut latencies = Cdf::new();
        let mut answered = 0usize;
        let mut schema_sum = 0usize;
        for t in &tracks {
            schema_sum += t.visited.len();
            if t.hits > 0 {
                answered += 1;
                latencies.record_duration(t.max_latency);
            }
        }
        ReformulatedBatchReport {
            latencies,
            submitted: queries.len() - skipped,
            answered,
            skipped,
            mapping_fetches,
            data_lookups,
            timed_out,
            mean_schemas: if queries.len() > skipped {
                schema_sum as f64 / (queries.len() - skipped) as f64
            } else {
                0.0
            },
            messages: self.net.stats().sent - base_messages,
        }
    }
}

/// Result of a conjunctive-query batch over the wide-area simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConjunctiveWanReport {
    /// End-to-end latency CDF over answered queries: the moment the
    /// last pattern's last reformulated bindings arrived (the join
    /// itself is local at the origin and charged as free).
    pub latencies: Cdf,
    pub submitted: usize,
    /// Queries whose joined solution set is non-empty.
    pub answered: usize,
    /// Mean solution rows per answered query.
    pub mean_rows: f64,
    /// Patterns that could not be routed (no constant).
    pub unroutable_patterns: usize,
    pub mapping_fetches: usize,
    pub data_lookups: usize,
    pub timed_out: usize,
    /// Total messages the network carried during the batch.
    pub messages: u64,
}

/// Work attached to one in-flight retrieve of the conjunctive driver.
enum ConjWork {
    SchemaFetch {
        query: usize,
        pattern: usize,
        schema: SchemaId,
        pat: TriplePattern,
        accum: SimDuration,
        depth: usize,
    },
    DataLookup {
        query: usize,
        pattern: usize,
        pat: TriplePattern,
        accum: SimDuration,
    },
}

/// Per-(query, pattern) progress of the conjunctive driver.
struct PatternTrack {
    visited: BTreeSet<SchemaId>,
    bindings: Vec<Binding>,
    max_latency: SimDuration,
}

impl Deployment {
    fn submit_conj_retrieve(
        &mut self,
        origin: usize,
        key: gridvine_pgrid::BitString,
        work: ConjWork,
        pending: &mut BTreeMap<(usize, u64), ConjWork>,
    ) {
        let node = NodeId::from_index(origin);
        let req = self
            .net
            .invoke(node, move |n, ctx| n.start_retrieve(ctx, key));
        pending.insert((origin, req), work);
    }

    /// Resolve conjunctive queries over the event-driven deployment
    /// (§2.3): every pattern is disseminated through the mapping network
    /// like [`Deployment::run_reformulated_queries`] (iterative,
    /// independent join — the origin collects each pattern's bindings
    /// from all reachable schemas, then joins locally). A query's
    /// latency is the slowest chain over all of its patterns.
    pub fn run_conjunctive_queries(
        &mut self,
        queries: &[ConjunctiveQuery],
        ttl: usize,
    ) -> ConjunctiveWanReport {
        let base_messages = self.net.stats().sent;
        let mut pending: BTreeMap<(usize, u64), ConjWork> = BTreeMap::new();
        // tracks[query][pattern]
        let mut tracks: Vec<Vec<PatternTrack>> = Vec::with_capacity(queries.len());
        let mut origins: Vec<usize> = Vec::with_capacity(queries.len());
        let mut unroutable = 0usize;
        let mut mapping_fetches = 0usize;
        let mut data_lookups = 0usize;
        let mut timed_out = 0usize;

        for (qi, q) in queries.iter().enumerate() {
            let origin = self.rng.gen_range(0..self.config.peers);
            origins.push(origin);
            let mut qtracks = Vec::with_capacity(q.patterns.len());
            for (pi, pat) in q.patterns.iter().enumerate() {
                let mut track = PatternTrack {
                    visited: BTreeSet::new(),
                    bindings: Vec::new(),
                    max_latency: SimDuration::ZERO,
                };
                match pat.routing_constant() {
                    Some((_, term)) => {
                        let key = self.keyspace().key_of(term.lexical());
                        data_lookups += 1;
                        self.submit_conj_retrieve(
                            origin,
                            key,
                            ConjWork::DataLookup {
                                query: qi,
                                pattern: pi,
                                pat: pat.clone(),
                                accum: SimDuration::ZERO,
                            },
                            &mut pending,
                        );
                    }
                    None => unroutable += 1,
                }
                if ttl > 0 {
                    if let Ok((schema, _)) = gridvine_semantic::pattern_schema(pat) {
                        track.visited.insert(schema.clone());
                        let key = self.keyspace().key_of(schema.as_str());
                        mapping_fetches += 1;
                        self.submit_conj_retrieve(
                            origin,
                            key,
                            ConjWork::SchemaFetch {
                                query: qi,
                                pattern: pi,
                                schema,
                                pat: pat.clone(),
                                accum: SimDuration::ZERO,
                                depth: 0,
                            },
                            &mut pending,
                        );
                    }
                }
                qtracks.push(track);
            }
            tracks.push(qtracks);
        }

        while !pending.is_empty() {
            self.net.run_until_quiescent();
            let mut completions: Vec<(usize, gridvine_pgrid::proto::Outcome<MediationItem>)> =
                Vec::new();
            for i in 0..self.config.peers {
                for o in self.net.node_mut(NodeId::from_index(i)).drain_completed() {
                    completions.push((i, o));
                }
            }
            for (node_i, o) in completions {
                let Some(work) = pending.remove(&(node_i, o.id)) else {
                    continue;
                };
                if o.status == Status::TimedOut {
                    timed_out += 1;
                    continue;
                }
                match work {
                    ConjWork::DataLookup {
                        query,
                        pattern,
                        pat,
                        accum,
                    } => {
                        let track = &mut tracks[query][pattern];
                        let mut matched = false;
                        for item in &o.values {
                            if let MediationItem::Triple(t) = item {
                                if let Some(b) = pat.match_triple(t) {
                                    track.bindings.push(b);
                                    matched = true;
                                }
                            }
                        }
                        if matched {
                            track.max_latency = track.max_latency.max(accum + o.latency());
                        }
                    }
                    ConjWork::SchemaFetch {
                        query,
                        pattern,
                        schema,
                        pat,
                        accum,
                        depth,
                    } => {
                        let chain_accum = accum + o.latency();
                        let mut seen_ids = BTreeSet::new();
                        let mappings: Vec<Mapping> = o
                            .values
                            .iter()
                            .filter_map(|item| match item {
                                MediationItem::Mapping { mapping, .. } => {
                                    seen_ids.insert(mapping.id).then(|| mapping.clone())
                                }
                                _ => None,
                            })
                            .collect();
                        for m in mappings {
                            let Some(dir) = m.applicable_from(&schema) else {
                                continue;
                            };
                            let dest = m.destination(dir).clone();
                            if tracks[query][pattern].visited.contains(&dest) {
                                continue;
                            }
                            let Some(np) = gridvine_semantic::reformulate_pattern(&pat, &m, dir)
                            else {
                                continue;
                            };
                            tracks[query][pattern].visited.insert(dest.clone());
                            let origin = origins[query];
                            if let Some((_, term)) = np.routing_constant() {
                                let key = self.keyspace().key_of(term.lexical());
                                data_lookups += 1;
                                self.submit_conj_retrieve(
                                    origin,
                                    key,
                                    ConjWork::DataLookup {
                                        query,
                                        pattern,
                                        pat: np.clone(),
                                        accum: chain_accum,
                                    },
                                    &mut pending,
                                );
                            }
                            if depth + 1 < ttl {
                                let key = self.keyspace().key_of(dest.as_str());
                                mapping_fetches += 1;
                                self.submit_conj_retrieve(
                                    origin,
                                    key,
                                    ConjWork::SchemaFetch {
                                        query,
                                        pattern,
                                        schema: dest,
                                        pat: np,
                                        accum: chain_accum,
                                        depth: depth + 1,
                                    },
                                    &mut pending,
                                );
                            }
                        }
                    }
                }
            }
        }

        // Join locally at each origin.
        let mut latencies = Cdf::new();
        let mut answered = 0usize;
        let mut rows_sum = 0usize;
        for (qi, q) in queries.iter().enumerate() {
            let mut rows: Vec<Binding> = vec![Binding::new()];
            let mut latest = SimDuration::ZERO;
            for (pi, _) in q.patterns.iter().enumerate() {
                let track = &tracks[qi][pi];
                latest = latest.max(track.max_latency);
                let mut next = Vec::new();
                for row in &rows {
                    for b in &track.bindings {
                        if let Some(j) = row.join(b) {
                            next.push(j);
                        }
                    }
                }
                rows = next;
                if rows.is_empty() {
                    break;
                }
            }
            let vars: Vec<&str> = q.distinguished.iter().map(String::as_str).collect();
            let mut projected: Vec<Binding> = rows.into_iter().map(|b| b.project(&vars)).collect();
            projected.sort_by_key(|b| b.to_string());
            projected.dedup();
            if !projected.is_empty() {
                answered += 1;
                rows_sum += projected.len();
                latencies.record_duration(latest);
            }
        }

        ConjunctiveWanReport {
            latencies,
            submitted: queries.len(),
            answered,
            mean_rows: if answered > 0 {
                rows_sum as f64 / answered as f64
            } else {
                0.0
            },
            unroutable_patterns: unroutable,
            mapping_fetches,
            data_lookups,
            timed_out,
            messages: self.net.stats().sent - base_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvine_workload::{QueryConfig, QueryGenerator, Workload, WorkloadConfig};

    fn small_deployment(seed: u64) -> (Deployment, Workload) {
        let w = Workload::generate(WorkloadConfig::small(seed));
        let cfg = DeploymentConfig {
            peers: 48,
            // Homogeneous machines: unit tests should not depend on the
            // heavy-tailed 2007 calibration.
            network: gridvine_netsim::NetworkConfig::planetlab(),
            ..DeploymentConfig::paper(seed)
        };
        let mut d = Deployment::new(cfg);
        let triples: Vec<Triple> = w.all_triples().into_iter().map(|(_, t)| t).collect();
        d.preload(triples);
        (d, w)
    }

    #[test]
    fn preload_places_triples_with_replicas() {
        let (d, w) = small_deployment(1);
        let total: usize = (0..48)
            .map(|i| d.network().node(NodeId::from_index(i)).store().len())
            .sum();
        // Three index keys per triple, each placed on ≥1 peer.
        assert!(total >= 3 * w.triple_count() / 2, "placed {total}");
    }

    #[test]
    fn queries_get_answered_with_realistic_latencies() {
        let (mut d, w) = small_deployment(2);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(3);
        let queries: Vec<TriplePatternQuery> =
            gen.batch(60, &mut r).into_iter().map(|g| g.query).collect();
        let report = d.run_queries(&queries);
        assert_eq!(report.submitted, 60);
        assert!(report.answered > 20, "answered {}", report.answered);
        assert_eq!(report.timed_out, 0);
        assert!(report.mean_hops >= 1.0);
        let mut lat = report.latencies.clone();
        // Typical WAN queries pay several hops of processing + RTT
        // (queries whose origin happens to own the key finish locally,
        // so the minimum can be ~0 — but not the median).
        assert!(lat.median() > 0.02, "median {}", lat.median());
        // And the batch's tail stays within the timeout.
        assert!(lat.quantile(1.0) < 30.0);
    }

    #[test]
    fn batches_are_deterministic() {
        let run = |seed| {
            let (mut d, w) = small_deployment(seed);
            let gen = QueryGenerator::new(&w, QueryConfig::default());
            let mut r = rng::seeded(9);
            let queries: Vec<TriplePatternQuery> =
                gen.batch(30, &mut r).into_iter().map(|g| g.query).collect();
            let rep = d.run_queries(&queries);
            (rep.answered, rep.messages, rep.wall)
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn figure2_query_finds_aspergillus_over_the_wire() {
        let (mut d, _) = small_deployment(5);
        let q = TriplePatternQuery::example_aspergillus();
        let report = d.run_queries(&[q]);
        // EMBL#Organism data exists in every small workload.
        assert_eq!(report.answered, 1, "{report:?}");
    }

    /// Wire a deployment with a manual mapping chain over the workload
    /// schemas, preloaded into the DHT.
    fn chained_deployment(seed: u64) -> (Deployment, Workload) {
        let (mut d, w) = small_deployment(seed);
        let mut registry = gridvine_semantic::MappingRegistry::new();
        for s in &w.schemas {
            registry.add_schema(s.clone());
        }
        for i in 0..w.schemas.len() - 1 {
            let a = w.schemas[i].id().clone();
            let b = w.schemas[i + 1].id().clone();
            let corrs = w.ground_truth.correct_pairs(&a, &b);
            if !corrs.is_empty() {
                registry.add_mapping(
                    a,
                    b,
                    gridvine_semantic::MappingKind::Equivalence,
                    gridvine_semantic::Provenance::Manual,
                    corrs,
                );
            }
        }
        let mappings: Vec<Mapping> = registry.mappings().cloned().collect();
        d.preload_mediation(w.schemas.clone(), mappings.iter());
        (d, w)
    }

    #[test]
    fn reformulated_queries_reach_other_schemas_over_the_wire() {
        let (mut d, w) = chained_deployment(6);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let fig2 = gen.figure2();
        let report = d.run_reformulated_queries(std::slice::from_ref(&fig2.query), 10);
        assert_eq!(report.submitted, 1);
        assert_eq!(report.answered, 1, "{report:?}");
        assert_eq!(report.timed_out, 0);
        // The chain covers every schema carrying the organism concept.
        assert!(report.mean_schemas > 1.0, "{report:?}");
        assert!(report.mapping_fetches >= 1);
        assert!(report.data_lookups > 1, "reformulations issued lookups");
    }

    #[test]
    fn reformulation_latency_exceeds_plain_lookup_latency() {
        // The same query answered with and without dissemination: the
        // reformulated run waits for mapping fetches + deeper lookups,
        // so its end-to-end latency dominates the plain lookup's.
        let (mut d, w) = chained_deployment(7);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(4);
        let queries: Vec<TriplePatternQuery> =
            gen.batch(20, &mut r).into_iter().map(|g| g.query).collect();
        let plain = d.run_queries(&queries);
        let reformulated = d.run_reformulated_queries(&queries, 10);
        assert!(reformulated.answered >= plain.answered, "{reformulated:?}");
        let mut pl = plain.latencies.clone();
        let mut rl = reformulated.latencies.clone();
        assert!(
            rl.median() > pl.median(),
            "reformulated median {} must exceed plain {}",
            rl.median(),
            pl.median()
        );
    }

    #[test]
    fn ttl_zero_disables_dissemination() {
        let (mut d, w) = chained_deployment(8);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let fig2 = gen.figure2();
        let report = d.run_reformulated_queries(std::slice::from_ref(&fig2.query), 0);
        assert_eq!(report.mapping_fetches, 0);
        assert_eq!(report.data_lookups, 1);
        assert!(report.mean_schemas <= 1.0);
    }

    #[test]
    fn conjunctive_queries_join_over_the_wire() {
        let (mut d, w) = chained_deployment(10);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(5);
        let queries: Vec<ConjunctiveQuery> = gen
            .conjunctive_batch(12, &mut r)
            .into_iter()
            .map(|g| g.query)
            .collect();
        let rep = d.run_conjunctive_queries(&queries, 6);
        assert_eq!(rep.submitted, 12);
        assert!(rep.answered > 4, "{rep:?}");
        assert_eq!(rep.unroutable_patterns, 0);
        assert!(rep.mean_rows >= 1.0);
        // Two patterns per query: at least two data lookups each.
        assert!(rep.data_lookups >= 24, "{rep:?}");
        assert!(rep.mapping_fetches > 0);
    }

    #[test]
    fn conjunctive_wan_agrees_with_synchronous_system() {
        // The WAN driver and the synchronous system resolve the same
        // query over the same corpus + chain: identical solution rows.
        use crate::system::{GridVineConfig, GridVineSystem, Strategy};
        use crate::JoinMode;
        let (mut d, w) = chained_deployment(11);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(6);
        let g = gen.conjunctive(&mut r);

        // Synchronous twin.
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 48,
            ..GridVineConfig::default()
        });
        let p0 = gridvine_pgrid::PeerId(0);
        for s in &w.schemas {
            sys.insert_schema(p0, s.clone()).unwrap();
        }
        for s in &w.schemas {
            sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
        }
        for i in 0..w.schemas.len() - 1 {
            let a = w.schemas[i].id().clone();
            let b = w.schemas[i + 1].id().clone();
            let corrs = w.ground_truth.correct_pairs(&a, &b);
            if !corrs.is_empty() {
                sys.insert_mapping(
                    p0,
                    a,
                    b,
                    gridvine_semantic::MappingKind::Equivalence,
                    gridvine_semantic::Provenance::Manual,
                    corrs,
                )
                .unwrap();
            }
        }
        let sync = sys
            .search_conjunctive(p0, &g.query, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        let wan = d.run_conjunctive_queries(std::slice::from_ref(&g.query), 10);
        // Row multisets are not directly exposed by the WAN report; the
        // answered flag and row count must agree.
        assert_eq!(wan.answered == 1, !sync.bindings.is_empty(), "{}", g.query);
        if wan.answered == 1 {
            assert!(
                (wan.mean_rows - sync.bindings.len() as f64).abs() < 1e-9,
                "rows {} vs {}",
                wan.mean_rows,
                sync.bindings.len()
            );
        }
    }

    #[test]
    fn reformulated_batches_are_deterministic() {
        let run = || {
            let (mut d, w) = chained_deployment(9);
            let gen = QueryGenerator::new(&w, QueryConfig::default());
            let mut r = rng::seeded(2);
            let queries: Vec<TriplePatternQuery> =
                gen.batch(15, &mut r).into_iter().map(|g| g.query).collect();
            let rep = d.run_reformulated_queries(&queries, 6);
            (
                rep.answered,
                rep.messages,
                rep.data_lookups,
                rep.mapping_fetches,
            )
        };
        assert_eq!(run(), run());
    }
}
