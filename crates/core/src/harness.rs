//! The asynchronous deployment harness: GridVine over the event-driven
//! simulator.
//!
//! Reproduces the §2.3 deployment: "340 machines scattered around the
//! world sharing 17000 triples … 40% of the 23000 triple pattern queries
//! we submitted were answered within one second only, and 75% within
//! five seconds."
//!
//! The harness builds a P-Grid topology over `n` simulated machines,
//! preloads triples through the replica-aware stores, then submits a
//! query workload. All three historical drivers — plain lookups,
//! reformulated dissemination and conjunctive joins — are projections of
//! **one plan-driven loop**, [`Deployment::run_plans`]: every query is a
//! logical [`QueryPlan`] whose routed lookups and mapping fetches run
//! through the asynchronous protocol ([`gridvine_pgrid::proto`]).
//!
//! Since PR 5 the driver is **fully event-driven on the netsim clock**:
//! the network is pumped one event at a time
//! ([`gridvine_netsim::Network::step_node`]) and every completion is
//! processed *at its actual simulated completion instant* — a
//! reformulated lookup is submitted the moment the mapping fetch that
//! revealed it lands, chains across queries genuinely overlap in
//! flight, and the latency [`Cdf`] is derived from real completion
//! times (`completed_at − submitted_at`) instead of per-chain latency
//! re-aggregation. [`Deployment::run_plans_with`] additionally streams
//! every matched partial result ([`WanPartial`]) to the caller as it
//! lands, so consumers see rows trickle in per chain instead of
//! waiting for the batch report. Closure queries warm a **per-origin
//! bounded LRU closure cache** ([`DeploymentConfig::closure_cache_capacity`]):
//! a repeated closure query from the same origin replays its recorded
//! hops and skips every mapping fetch.

use crate::item::{KeySpace, MediationItem};
use crate::plan::QueryPlan;
use crate::system::exec::with_predicate;
use gridvine_netsim::rng;
use gridvine_netsim::{Cdf, Network, NetworkConfig, NodeId, SimDuration, SimTime};
use gridvine_pgrid::proto::{PGridMsg, PGridNode, Status};
use gridvine_pgrid::{BitString, HashKind, KeyHasher, Topology};
use gridvine_rdf::{Binding, ConjunctiveQuery, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{CachedHop, ClosureCache, ClosureKey, Mapping, Schema, SchemaId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Deployment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Machines in the deployment (the paper used 340).
    pub peers: usize,
    pub refs_per_level: usize,
    pub key_depth: usize,
    pub hash: HashKind,
    /// Network model (the paper's machines were "scattered around the
    /// world" — use [`NetworkConfig::planetlab`]).
    pub network: NetworkConfig,
    /// Per-request timeout.
    pub timeout: SimDuration,
    /// Mean query inter-arrival time across the whole network.
    pub mean_interarrival: SimDuration,
    /// Capacity of each origin peer's bounded LRU closure cache (see
    /// `gridvine_semantic::ClosureCache`). Zero disables WAN-side
    /// closure caching.
    pub closure_cache_capacity: usize,
    pub seed: u64,
}

impl DeploymentConfig {
    /// The paper's deployment: 340 machines, 2007-era wide-area
    /// latencies with heavy per-node heterogeneity.
    pub fn paper(seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            peers: 340,
            refs_per_level: 3,
            key_depth: 24,
            hash: HashKind::OrderPreserving,
            network: NetworkConfig::planetlab_2007(),
            timeout: SimDuration::from_secs(60),
            mean_interarrival: SimDuration::from_millis(40),
            closure_cache_capacity: 64,
            seed,
        }
    }
}

/// Result of a plain single-pattern query batch (a projection of
/// [`WanBatchReport`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// Latency CDF over answered queries.
    pub latencies: Cdf,
    pub submitted: usize,
    pub answered: usize,
    pub not_found: usize,
    pub timed_out: usize,
    /// Mean overlay hops among answered queries.
    pub mean_hops: f64,
    /// Total messages the network carried during the batch.
    pub messages: u64,
    /// Simulated time the batch took.
    pub wall: SimDuration,
}

/// Result of a reformulated-query batch (a projection of
/// [`WanBatchReport`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReformulatedBatchReport {
    /// End-to-end latency CDF over answered queries. A query's latency
    /// is the longest reformulation chain it waited for: mapping-fetch
    /// latencies accumulate along the chain, plus the final data lookup.
    pub latencies: Cdf,
    pub submitted: usize,
    /// Queries with ≥ 1 matching result (across all reformulations).
    pub answered: usize,
    /// Queries whose predicate named no schema (not disseminated).
    pub skipped: usize,
    /// Total schema-key retrieves (mapping discovery).
    pub mapping_fetches: usize,
    /// Total data-key retrieves (original + reformulated patterns).
    pub data_lookups: usize,
    /// Requests lost to timeouts across the batch.
    pub timed_out: usize,
    /// Mean schemas reached per submitted query.
    pub mean_schemas: f64,
    /// Total messages the network carried during the batch.
    pub messages: u64,
}

/// Result of a conjunctive-query batch (a projection of
/// [`WanBatchReport`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConjunctiveWanReport {
    /// End-to-end latency CDF over answered queries: the moment the
    /// last pattern's last reformulated bindings arrived (the join
    /// itself is local at the origin and charged as free).
    pub latencies: Cdf,
    pub submitted: usize,
    /// Queries whose joined solution set is non-empty.
    pub answered: usize,
    /// Mean solution rows per answered query.
    pub mean_rows: f64,
    /// Patterns that could not be routed (no constant).
    pub unroutable_patterns: usize,
    pub mapping_fetches: usize,
    pub data_lookups: usize,
    pub timed_out: usize,
    /// Total messages the network carried during the batch.
    pub messages: u64,
}

/// Knobs for one plan-driven WAN batch ([`Deployment::run_plans`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WanBatchOptions {
    /// Reformulation TTL (mapping applications per pattern closure).
    /// Plain [`QueryPlan::Pattern`] lookups ignore it.
    pub ttl: usize,
    /// Poisson arrival process: mean inter-arrival between query
    /// submissions; `None` submits the whole batch at time zero.
    pub mean_interarrival: Option<SimDuration>,
    /// Per-query result cap for [`QueryPlan::Closure`] plans — the WAN
    /// twin of the synchronous session's early termination: once a
    /// query has collected `limit` **distinct** matched bindings, its
    /// mapping-fetch
    /// completions stop expanding (no further reformulated lookups or
    /// deeper fetches are submitted), so a limited query sends strictly
    /// fewer messages than an unlimited one whenever dissemination
    /// remained. Limited closure queries bypass the per-origin closure
    /// cache (a warm replay submits every recorded hop up front, which
    /// would defeat the truncation). Join plans ignore the cap
    /// (dropping a binding could drop the joining row, changing results
    /// rather than just truncating them); in-flight requests are
    /// allowed to land.
    pub limit: Option<usize>,
}

/// Everything one plan-driven WAN batch measured. The three legacy
/// report shapes are projections of this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WanBatchReport {
    /// End-to-end latency CDF over answered queries (a query's latency
    /// is its slowest matched chain).
    pub latencies: Cdf,
    /// Plans that issued at least one request (or were counted as
    /// submitted by their shape).
    pub submitted: usize,
    /// Queries with results: ≥ 1 match for single-pattern plans, a
    /// non-empty joined solution set for join plans.
    pub answered: usize,
    /// Completed single-pattern queries with no match anywhere.
    pub not_found: usize,
    /// Plans not disseminated at all: unroutable [`QueryPlan::Pattern`]s,
    /// schema-less [`QueryPlan::Closure`]s, and [`QueryPlan::ObjectPrefix`]
    /// sweeps (the asynchronous protocol has no range retrieve).
    pub skipped: usize,
    /// Requests lost to timeouts across the batch.
    pub timed_out: usize,
    /// Join-plan patterns that could not be routed (no constant).
    pub unroutable_patterns: usize,
    /// Total schema-key retrieves (mapping discovery).
    pub mapping_fetches: usize,
    /// Total data-key retrieves (original + reformulated instances).
    pub data_lookups: usize,
    /// Mean overlay hops of the initial (own-vocabulary) lookup among
    /// answered queries that recorded one.
    pub mean_hops: f64,
    /// Mean schemas reached per submitted query.
    pub mean_schemas: f64,
    /// Mean solution rows per answered join plan.
    pub mean_rows: f64,
    /// Closure queries served from a per-origin closure-cache entry
    /// (their mapping fetches were skipped entirely).
    pub cache_hits: usize,
    /// Total messages the network carried during the batch.
    pub messages: u64,
    /// Simulated time the batch took.
    pub wall: SimDuration,
}

/// One streamed partial result of a plan-driven WAN batch: the fresh
/// bindings a data reply matched, delivered to the
/// [`Deployment::run_plans_with`] sink at the reply's actual simulated
/// completion instant, while the rest of the batch is still in flight.
#[derive(Debug)]
pub struct WanPartial<'a> {
    /// Index of the plan in the submitted batch.
    pub query: usize,
    /// Simulated completion instant of the reply that carried these
    /// bindings.
    pub at: SimTime,
    /// The fresh matched bindings (per reply, not cumulative).
    pub bindings: &'a [Binding],
}

/// Work attached to one in-flight retrieve of the plan driver.
enum WanWork {
    /// `Retrieve(Hash(routing constant))` — answer one (possibly
    /// reformulated, possibly bound-substituted) pattern instance.
    Data {
        query: usize,
        pattern: usize,
        pat: TriplePattern,
        /// The query's own-vocabulary (depth-0) lookup; its hop count
        /// feeds [`WanBatchReport::mean_hops`].
        initial: bool,
    },
    /// `Retrieve(Hash(schema))` — mapping discovery for one chain.
    Schema {
        query: usize,
        pattern: usize,
        schema: SchemaId,
        pat: TriplePattern,
        depth: usize,
        /// Minimum mapping quality along the chain so far (recorded
        /// into the per-origin closure cache).
        quality: f64,
    },
}

/// Per-(query, pattern) progress of the plan driver.
struct WanTrack {
    visited: BTreeSet<SchemaId>,
    bindings: Vec<Binding>,
    /// Display forms of the distinct bindings collected so far — what
    /// [`WanBatchOptions::limit`] counts against (duplicates shipped by
    /// different schemas must not satisfy the cap early).
    distinct: BTreeSet<String>,
    /// Latest simulated completion instant among matched data replies
    /// — the query's end-to-end latency is `matched_at − submitted_at`.
    matched_at: Option<SimTime>,
    /// Hop count of the depth-0 lookup, once it completed.
    hops: Option<u32>,
    /// Any request of this track timed out.
    timed_out: bool,
    /// Mapping fetches of this track still in flight (a closure's
    /// expansion is complete — and cacheable — when this reaches 0).
    open_fetches: usize,
    /// Hop list recorded for the per-origin closure cache (root hop
    /// first, empty for warm replays). Only committed when the
    /// expansion completed untruncated.
    recorded: Vec<CachedHop>,
    /// The limit cap truncated this track's expansion (a partial
    /// closure must never be recorded as complete).
    limited: bool,
}

impl WanTrack {
    fn new() -> WanTrack {
        WanTrack {
            visited: BTreeSet::new(),
            bindings: Vec::new(),
            distinct: BTreeSet::new(),
            matched_at: None,
            hops: None,
            timed_out: false,
            open_fetches: 0,
            recorded: Vec::new(),
            limited: false,
        }
    }
}

/// Mutable batch state threaded through the event-driven drive loop.
struct WanDrive {
    pending: BTreeMap<(usize, u64), WanWork>,
    origins: Vec<usize>,
    /// tracks[query][pattern]
    tracks: Vec<Vec<WanTrack>>,
    submitted_at: Vec<SimTime>,
    /// Cache keys of cold closure expansions, `[query][pattern]`:
    /// closure plans use pattern 0, join plans one slot per pattern
    /// (None for non-closure shapes, TTL 0 and warm replays).
    closure_keys: Vec<Vec<Option<ClosureKey>>>,
    skipped_flags: Vec<bool>,
    skipped: usize,
    unroutable: usize,
    mapping_fetches: usize,
    data_lookups: usize,
    timed_out: usize,
    cache_hits: usize,
}

/// GridVine deployed over the discrete-event simulator.
pub struct Deployment {
    config: DeploymentConfig,
    topology: Topology,
    net: Network<PGridNode<MediationItem>, PGridMsg<MediationItem>>,
    hasher: Box<dyn KeyHasher + Send + Sync>,
    /// Per-origin bounded LRU closure caches (the WAN twin of the
    /// synchronous system's per-peer caches), keyed on the deployment's
    /// mediation epoch.
    caches: Vec<ClosureCache>,
    /// Bumped by every [`Deployment::preload_mediation`]: mapping
    /// changes invalidate all recorded closures wholesale.
    mediation_epoch: u64,
    rng: rand::rngs::StdRng,
}

impl Deployment {
    /// Build the network; all peers start live.
    pub fn new(config: DeploymentConfig) -> Deployment {
        let mut seed_rng = rng::derive(config.seed, 0xDEB);
        let topology = Topology::balanced(config.peers, config.refs_per_level, &mut seed_rng);
        debug_assert!(topology.validate().is_ok());
        let mut net = Network::new(config.network.clone(), config.seed);
        for i in 0..config.peers {
            net.add_node(PGridNode::from_topology(&topology, i, config.timeout));
        }
        Deployment {
            hasher: config.hash.build(),
            topology,
            net,
            caches: (0..config.peers)
                .map(|_| ClosureCache::bounded(config.closure_cache_capacity))
                .collect(),
            mediation_epoch: 0,
            rng: rng::derive(config.seed, 0xF00D),
            config,
        }
    }

    /// Closure queries currently memoized across all origin caches
    /// (valid for the current mediation epoch).
    pub fn cached_closures(&self) -> usize {
        self.caches
            .iter()
            .map(|c| c.coherent_len(self.mediation_epoch))
            .sum()
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn network(&self) -> &Network<PGridNode<MediationItem>, PGridMsg<MediationItem>> {
        &self.net
    }

    pub fn network_mut(
        &mut self,
    ) -> &mut Network<PGridNode<MediationItem>, PGridMsg<MediationItem>> {
        &mut self.net
    }

    fn keyspace(&self) -> KeySpace<'_> {
        KeySpace::new(self.hasher.as_ref(), self.config.key_depth)
    }

    /// Preload triples directly into the responsible peers' stores
    /// (including replicas), as a completed bulk load would leave them.
    /// Returns the number of (key, triple) placements.
    ///
    /// Unlike the synchronous system — whose peers serve queries from
    /// indexed local databases — the WAN nodes keep bucket stores: the
    /// asynchronous protocol ships stored values back over the wire, and
    /// the origin filters them against the pattern.
    pub fn preload(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        let mut placements = 0;
        let keys: Vec<_> = triples
            .into_iter()
            .map(|t| {
                let ks = self.keyspace();
                let keys = ks.triple_keys(&t);
                (t, keys)
            })
            .collect();
        for (t, keys) in keys {
            for key in keys {
                for p in self.topology.responsible(&key).to_vec() {
                    self.net
                        .node_mut(NodeId::from_index(p.index()))
                        .store_mut()
                        .insert(key.clone(), MediationItem::Triple(t.clone()));
                    placements += 1;
                }
            }
        }
        placements
    }

    /// Place schema definitions and mappings at their overlay key
    /// spaces (including replicas), as completed `Update(Schema)` /
    /// `Update(Schema Mapping)` operations would leave them (§2.2, §3).
    pub fn preload_mediation<'m>(
        &mut self,
        schemas: impl IntoIterator<Item = Schema>,
        mappings: impl IntoIterator<Item = &'m Mapping>,
    ) -> usize {
        // The mapping network changed: recorded closures are stale.
        self.mediation_epoch += 1;
        let mut placements = 0;
        let schema_items: Vec<(BitString, MediationItem)> = schemas
            .into_iter()
            .map(|s| (self.keyspace().schema_key(&s), MediationItem::Schema(s)))
            .collect();
        let mapping_items: Vec<(BitString, MediationItem)> = mappings
            .into_iter()
            .flat_map(|m| {
                self.keyspace()
                    .mapping_keys(m)
                    .into_iter()
                    .map(|(key, at_source)| {
                        (
                            key,
                            MediationItem::Mapping {
                                mapping: m.clone(),
                                at_source,
                            },
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (key, item) in schema_items.into_iter().chain(mapping_items) {
            for p in self.topology.responsible(&key).to_vec() {
                self.net
                    .node_mut(NodeId::from_index(p.index()))
                    .store_mut()
                    .insert(key.clone(), item.clone());
                placements += 1;
            }
        }
        placements
    }

    /// Submit a retrieve and register its driver work.
    fn submit_wan(
        &mut self,
        origin: usize,
        key: BitString,
        work: WanWork,
        pending: &mut BTreeMap<(usize, u64), WanWork>,
    ) {
        let node = NodeId::from_index(origin);
        let req = self
            .net
            .invoke(node, move |n, ctx| n.start_retrieve(ctx, key));
        pending.insert((origin, req), work);
    }

    /// Drive a batch of logical [`QueryPlan`]s over the event-driven
    /// deployment — **the** WAN query loop — streaming every matched
    /// partial result to `sink` at its actual simulated completion
    /// instant.
    ///
    /// Each plan submits from a uniformly random origin (optionally on a
    /// Poisson arrival process): pattern plans issue one routed data
    /// lookup; closure plans additionally fetch their schema's mapping
    /// list and chase reformulations (iterative strategy, §4) up to the
    /// TTL; join plans disseminate every pattern like a closure and join
    /// the binding sets locally at the origin once the batch drains.
    ///
    /// The network is pumped one event at a time and every completion
    /// is processed when it *happens*: a reformulated lookup goes out
    /// the moment the mapping fetch that revealed it lands, so chains
    /// overlap in flight — across queries and within one query — and a
    /// query's reported latency is the real simulated span from its
    /// submission to its last matched data reply (for joins, over all
    /// patterns' chains).
    ///
    /// Closure plans consult the origin's bounded closure cache: a
    /// coherent entry replays the recorded hops (data lookups only —
    /// zero mapping fetches); a cold closure that expands to completion
    /// records its hops for the next query from that origin.
    pub fn run_plans_with(
        &mut self,
        plans: &[QueryPlan],
        options: &WanBatchOptions,
        sink: &mut dyn FnMut(WanPartial<'_>),
    ) -> WanBatchReport {
        let start = self.net.now();
        let base_messages = self.net.stats().sent;
        let ttl = options.ttl;
        let rate = options
            .mean_interarrival
            .map(|d| 1.0 / d.as_secs_f64().max(1e-9));

        let mut st = WanDrive {
            pending: BTreeMap::new(),
            origins: Vec::with_capacity(plans.len()),
            tracks: Vec::with_capacity(plans.len()),
            submitted_at: Vec::with_capacity(plans.len()),
            closure_keys: plans
                .iter()
                .map(|p| {
                    let patterns = match p {
                        QueryPlan::Join { query, .. } => query.patterns.len().max(1),
                        _ => 1,
                    };
                    vec![None; patterns]
                })
                .collect(),
            skipped_flags: vec![false; plans.len()],
            skipped: 0,
            unroutable: 0,
            mapping_fetches: 0,
            data_lookups: 0,
            timed_out: 0,
            cache_hits: 0,
        };
        let mut submit_at = SimTime::ZERO;

        // ---- Submission phase -------------------------------------
        // Interleaved with pumping: while the arrival process advances
        // the clock to the next submission instant, in-flight chains
        // keep completing (and expanding) underneath.
        for (qi, plan) in plans.iter().enumerate() {
            let origin = self.rng.gen_range(0..self.config.peers);
            st.origins.push(origin);
            // Whether this plan will issue any request (skipped shapes
            // never advance the arrival process). Decidable before
            // building the submissions, so the clock — and with it the
            // closure-cache lookup — can be advanced to the query's
            // actual arrival instant first: closures committed by
            // completions landing before the arrival must be visible.
            let will_submit = match plan {
                QueryPlan::Pattern { query } => query.pattern.routing_constant().is_some(),
                QueryPlan::ObjectPrefix { .. } => false,
                // A schema'd predicate is a constant URI, so closure
                // plans with a schema always route at least depth 0.
                QueryPlan::Closure { query } => gridvine_semantic::query_schema(query).is_ok(),
                QueryPlan::Join { query, .. } => query.patterns.iter().any(|p| {
                    p.routing_constant().is_some()
                        || (ttl > 0 && gridvine_semantic::pattern_schema(p).is_ok())
                }),
            };
            if will_submit {
                if let Some(rate) = rate {
                    // Pump the simulation to the submission instant —
                    // completions landing before it are processed at
                    // their own times — then inject the query.
                    let gap = rng::exponential(&mut self.rng, rate);
                    submit_at += SimDuration::from_secs_f64(gap);
                    let deadline = start + (submit_at - SimTime::ZERO);
                    self.pump_wan(Some(deadline), &mut st, plans, options, sink);
                }
            }
            let mut subs: Vec<(BitString, WanWork)> = Vec::new();
            let qtracks: Vec<WanTrack> = match plan {
                QueryPlan::Pattern { query } => {
                    let track = WanTrack::new();
                    match query.pattern.routing_constant() {
                        Some((_, term)) => {
                            st.data_lookups += 1;
                            subs.push((
                                self.keyspace().key_of(term.lexical()),
                                WanWork::Data {
                                    query: qi,
                                    pattern: 0,
                                    pat: query.pattern.clone(),
                                    initial: true,
                                },
                            ));
                        }
                        None => {
                            st.skipped_flags[qi] = true;
                            st.skipped += 1;
                        }
                    }
                    vec![track]
                }
                QueryPlan::ObjectPrefix { .. } => {
                    // The asynchronous protocol has no range retrieve;
                    // prefix sweeps exist only on the synchronous system.
                    st.skipped_flags[qi] = true;
                    st.skipped += 1;
                    vec![WanTrack::new()]
                }
                QueryPlan::Closure { query } => {
                    let mut track = WanTrack::new();
                    match gridvine_semantic::query_schema(query) {
                        Err(_) => {
                            st.skipped_flags[qi] = true;
                            st.skipped += 1;
                        }
                        Ok((schema, attr)) => {
                            track.visited.insert(schema.clone());
                            let key = ClosureKey {
                                schema: schema.clone(),
                                attr,
                                ttl,
                            };
                            // Limited queries bypass the cache: a warm
                            // replay submits every recorded hop's data
                            // lookup up front, which would defeat the
                            // limit's strictly-fewer-messages guarantee
                            // (the cold path stops expanding at k
                            // distinct bindings).
                            let cached = (ttl > 0 && options.limit.is_none())
                                .then(|| self.caches[origin].lookup(self.mediation_epoch, &key))
                                .flatten();
                            if let Some(hops) = cached {
                                // Warm replay: the recorded hops name
                                // every reachable schema and predicate —
                                // submit their data lookups directly,
                                // zero mapping fetches.
                                st.cache_hits += 1;
                                for hop in hops.iter() {
                                    track.visited.insert(hop.schema.clone());
                                    let pat = if hop.depth == 0 {
                                        query.pattern.clone()
                                    } else {
                                        with_predicate(&query.pattern, &hop.predicate)
                                    };
                                    if let Some((_, term)) = pat.routing_constant() {
                                        st.data_lookups += 1;
                                        subs.push((
                                            self.keyspace().key_of(term.lexical()),
                                            WanWork::Data {
                                                query: qi,
                                                pattern: 0,
                                                pat,
                                                initial: hop.depth == 0,
                                            },
                                        ));
                                    }
                                }
                            } else {
                                // Cold: answer in the query's own
                                // vocabulary…
                                if let Some((_, term)) = query.pattern.routing_constant() {
                                    st.data_lookups += 1;
                                    subs.push((
                                        self.keyspace().key_of(term.lexical()),
                                        WanWork::Data {
                                            query: qi,
                                            pattern: 0,
                                            pat: query.pattern.clone(),
                                            initial: true,
                                        },
                                    ));
                                }
                                // …and start discovering mappings.
                                if ttl > 0 {
                                    st.closure_keys[qi][0] = Some(key);
                                    track.recorded.push(CachedHop {
                                        schema: schema.clone(),
                                        predicate: crate::system::exec::pattern_predicate(
                                            &query.pattern,
                                        ),
                                        depth: 0,
                                        quality: 1.0,
                                    });
                                    st.mapping_fetches += 1;
                                    track.open_fetches += 1;
                                    subs.push((
                                        self.keyspace().key_of(schema.as_str()),
                                        WanWork::Schema {
                                            query: qi,
                                            pattern: 0,
                                            schema,
                                            pat: query.pattern.clone(),
                                            depth: 0,
                                            quality: 1.0,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                    vec![track]
                }
                QueryPlan::Join { query, .. } => {
                    let mut qtracks: Vec<WanTrack> =
                        (0..query.patterns.len()).map(|_| WanTrack::new()).collect();
                    for (pi, pat) in query.patterns.iter().enumerate() {
                        match pat.routing_constant() {
                            Some((_, term)) => {
                                st.data_lookups += 1;
                                subs.push((
                                    self.keyspace().key_of(term.lexical()),
                                    WanWork::Data {
                                        query: qi,
                                        pattern: pi,
                                        pat: pat.clone(),
                                        initial: true,
                                    },
                                ));
                            }
                            None => st.unroutable += 1,
                        }
                        if ttl > 0 {
                            if let Ok((schema, attr)) = gridvine_semantic::pattern_schema(pat) {
                                qtracks[pi].visited.insert(schema.clone());
                                let key = ClosureKey {
                                    schema: schema.clone(),
                                    attr,
                                    ttl,
                                };
                                // Join patterns ride the same per-origin
                                // closure caches as single-pattern
                                // closure plans (limited batches bypass
                                // them for the same strictly-fewer-
                                // messages reason).
                                let cached = (options.limit.is_none())
                                    .then(|| self.caches[origin].lookup(self.mediation_epoch, &key))
                                    .flatten();
                                if let Some(hops) = cached {
                                    // Warm replay: submit the recorded
                                    // reformulated lookups directly —
                                    // zero mapping fetches. The depth-0
                                    // lookup was already submitted
                                    // above.
                                    st.cache_hits += 1;
                                    for hop in hops.iter().filter(|h| h.depth > 0) {
                                        qtracks[pi].visited.insert(hop.schema.clone());
                                        let rp = with_predicate(pat, &hop.predicate);
                                        if let Some((_, term)) = rp.routing_constant() {
                                            st.data_lookups += 1;
                                            subs.push((
                                                self.keyspace().key_of(term.lexical()),
                                                WanWork::Data {
                                                    query: qi,
                                                    pattern: pi,
                                                    pat: rp,
                                                    initial: false,
                                                },
                                            ));
                                        }
                                    }
                                } else {
                                    st.closure_keys[qi][pi] = Some(key);
                                    qtracks[pi].recorded.push(CachedHop {
                                        schema: schema.clone(),
                                        predicate: crate::system::exec::pattern_predicate(pat),
                                        depth: 0,
                                        quality: 1.0,
                                    });
                                    st.mapping_fetches += 1;
                                    qtracks[pi].open_fetches += 1;
                                    subs.push((
                                        self.keyspace().key_of(schema.as_str()),
                                        WanWork::Schema {
                                            query: qi,
                                            pattern: pi,
                                            schema,
                                            pat: pat.clone(),
                                            depth: 0,
                                            quality: 1.0,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                    qtracks
                }
            };
            st.tracks.push(qtracks);
            debug_assert_eq!(
                will_submit,
                !subs.is_empty(),
                "arrival-process advancement must match actual submission"
            );
            st.submitted_at.push(self.net.now());
            let origin = st.origins[qi];
            let had_subs = !subs.is_empty();
            for (key, work) in subs {
                self.submit_wan(origin, key, work, &mut st.pending);
            }
            if had_subs {
                // A request whose origin is itself responsible
                // completes during submission without any network
                // event: drain it now, at its actual (current) instant.
                self.drain_wan_node(origin, &mut st, plans, options, sink);
            }
        }

        // ---- Drive until no chain has work left -------------------
        // Every request terminates (response or timeout timer), so one
        // unbounded pump drains the batch; follow-up submissions made
        // inside completion handling keep the loop going.
        self.pump_wan(None, &mut st, plans, options, sink);
        debug_assert!(st.pending.is_empty(), "all requests terminate");

        // ---- Aggregate --------------------------------------------
        let mut latencies = Cdf::new();
        let mut answered = 0usize;
        let mut not_found = 0usize;
        let mut hops_sum = 0u64;
        let mut hopped = 0usize;
        let mut schema_sum = 0usize;
        let mut rows_sum = 0usize;
        for (qi, plan) in plans.iter().enumerate() {
            if st.skipped_flags[qi] {
                continue;
            }
            let submitted_at = st.submitted_at[qi];
            match plan {
                QueryPlan::Pattern { .. }
                | QueryPlan::ObjectPrefix { .. }
                | QueryPlan::Closure { .. } => {
                    let track = &st.tracks[qi][0];
                    schema_sum += track.visited.len();
                    if !track.bindings.is_empty() {
                        answered += 1;
                        let done = track.matched_at.unwrap_or(submitted_at);
                        latencies.record_duration(done.saturating_since(submitted_at));
                        if let Some(h) = track.hops {
                            hops_sum += h as u64;
                            hopped += 1;
                        }
                    } else if !track.timed_out {
                        not_found += 1;
                    }
                }
                QueryPlan::Join { query, .. } => {
                    // Join locally at the origin.
                    let mut rows: Vec<Binding> = vec![Binding::new()];
                    let mut latest = submitted_at;
                    for (pi, _) in query.patterns.iter().enumerate() {
                        let track = &st.tracks[qi][pi];
                        schema_sum += track.visited.len();
                        if let Some(m) = track.matched_at {
                            latest = latest.max(m);
                        }
                        let mut next = Vec::new();
                        for row in &rows {
                            for b in &track.bindings {
                                if let Some(j) = row.join(b) {
                                    next.push(j);
                                }
                            }
                        }
                        rows = next;
                        if rows.is_empty() {
                            break;
                        }
                    }
                    let vars: Vec<&str> = query.distinguished.iter().map(String::as_str).collect();
                    let mut projected: Vec<Binding> =
                        rows.into_iter().map(|b| b.project(&vars)).collect();
                    projected.sort_by_key(|b| b.to_string());
                    projected.dedup();
                    if !projected.is_empty() {
                        answered += 1;
                        rows_sum += projected.len();
                        latencies.record_duration(latest.saturating_since(submitted_at));
                    }
                }
            }
        }

        let submitted = plans.len() - st.skipped;
        WanBatchReport {
            latencies,
            submitted,
            answered,
            not_found,
            skipped: st.skipped,
            timed_out: st.timed_out,
            unroutable_patterns: st.unroutable,
            mapping_fetches: st.mapping_fetches,
            data_lookups: st.data_lookups,
            mean_hops: if hopped > 0 {
                hops_sum as f64 / hopped as f64
            } else {
                0.0
            },
            mean_schemas: if submitted > 0 {
                schema_sum as f64 / submitted as f64
            } else {
                0.0
            },
            mean_rows: if answered > 0 {
                rows_sum as f64 / answered as f64
            } else {
                0.0
            },
            cache_hits: st.cache_hits,
            messages: self.net.stats().sent - base_messages,
            wall: self.net.now().saturating_since(start),
        }
    }

    /// [`Deployment::run_plans_with`] without a streaming consumer.
    pub fn run_plans(&mut self, plans: &[QueryPlan], options: &WanBatchOptions) -> WanBatchReport {
        self.run_plans_with(plans, options, &mut |_| {})
    }

    /// Pump the network one event at a time, handling every request
    /// completion at its actual simulated completion instant (which may
    /// submit follow-up requests). With a deadline, stops before the
    /// first event past it and advances the clock exactly to it.
    fn pump_wan(
        &mut self,
        deadline: Option<SimTime>,
        st: &mut WanDrive,
        plans: &[QueryPlan],
        options: &WanBatchOptions,
        sink: &mut dyn FnMut(WanPartial<'_>),
    ) {
        loop {
            if let Some(d) = deadline {
                match self.net.peek_time() {
                    Some(t) if t <= d => {}
                    _ => break,
                }
            }
            let Some(node) = self.net.step_node() else {
                break;
            };
            self.drain_wan_node(node.index(), st, plans, options, sink);
        }
        if let Some(d) = deadline {
            // Nothing left at or before the deadline: land the clock on
            // it so the next submission happens at its arrival instant.
            self.net.run_until(d);
        }
    }

    /// Drain and handle one node's buffered request completions.
    /// Handling may submit follow-up requests whose origin completes
    /// them locally on the spot — recurse so those are processed at
    /// their own (identical) instant instead of lingering undrained.
    fn drain_wan_node(
        &mut self,
        node_index: usize,
        st: &mut WanDrive,
        plans: &[QueryPlan],
        options: &WanBatchOptions,
        sink: &mut dyn FnMut(WanPartial<'_>),
    ) {
        let completed = self
            .net
            .node_mut(NodeId::from_index(node_index))
            .drain_completed();
        for o in completed {
            self.handle_wan_completion(node_index, o, st, plans, options, sink);
        }
    }

    /// Process one completed retrieve of the plan driver.
    fn handle_wan_completion(
        &mut self,
        node_i: usize,
        o: gridvine_pgrid::proto::Outcome<MediationItem>,
        st: &mut WanDrive,
        plans: &[QueryPlan],
        options: &WanBatchOptions,
        sink: &mut dyn FnMut(WanPartial<'_>),
    ) {
        let Some(work) = st.pending.remove(&(node_i, o.id)) else {
            return;
        };
        let now = o.completed_at;
        if o.status == Status::TimedOut {
            st.timed_out += 1;
            match work {
                WanWork::Data { query, pattern, .. } => {
                    st.tracks[query][pattern].timed_out = true;
                }
                WanWork::Schema { query, pattern, .. } => {
                    let track = &mut st.tracks[query][pattern];
                    track.timed_out = true;
                    // A lost discovery leaves the expansion incomplete:
                    // never record it.
                    track.open_fetches = track.open_fetches.saturating_sub(1);
                }
            }
            return;
        }
        match work {
            WanWork::Data {
                query,
                pattern,
                pat,
                initial,
            } => {
                let track = &mut st.tracks[query][pattern];
                // Origin-side filtering with the full pattern.
                let mut fresh: Vec<Binding> = Vec::new();
                for item in &o.values {
                    if let MediationItem::Triple(t) = item {
                        if let Some(b) = pat.match_triple(t) {
                            // Distinct tracking only matters to the
                            // limit check; unlimited batches skip its
                            // formatting cost.
                            if options.limit.is_some() {
                                track.distinct.insert(b.to_string());
                            }
                            track.bindings.push(b.clone());
                            fresh.push(b);
                        }
                    }
                }
                if !fresh.is_empty() {
                    track.matched_at = Some(track.matched_at.map_or(now, |m| m.max(now)));
                    sink(WanPartial {
                        query,
                        at: now,
                        bindings: &fresh,
                    });
                }
                if initial {
                    track.hops = Some(o.hops);
                }
            }
            WanWork::Schema {
                query,
                pattern,
                schema,
                pat,
                depth,
                quality,
            } => {
                st.tracks[query][pattern].open_fetches -= 1;
                // Early termination: a closure query that has already
                // collected its result cap stops expanding — the
                // reformulated lookups and deeper mapping fetches below
                // are never sent, and the truncated walk records
                // nothing.
                if matches!(plans[query], QueryPlan::Closure { .. })
                    && options
                        .limit
                        .is_some_and(|k| st.tracks[query][pattern].distinct.len() >= k)
                {
                    st.tracks[query][pattern].limited = true;
                    return;
                }
                // Mappings stored at this schema's key space; dedupe by
                // id (bidirectional copies).
                let mut seen_ids = BTreeSet::new();
                let mappings: Vec<Mapping> = o
                    .values
                    .iter()
                    .filter_map(|item| match item {
                        MediationItem::Mapping { mapping, .. } => {
                            seen_ids.insert(mapping.id).then(|| mapping.clone())
                        }
                        _ => None,
                    })
                    .collect();
                for m in mappings {
                    let Some(dir) = m.applicable_from(&schema) else {
                        continue;
                    };
                    let dest = m.destination(dir).clone();
                    if st.tracks[query][pattern].visited.contains(&dest) {
                        continue;
                    }
                    let Some(np) = gridvine_semantic::reformulate_pattern(&pat, &m, dir) else {
                        continue;
                    };
                    st.tracks[query][pattern].visited.insert(dest.clone());
                    let chain_quality = quality.min(m.quality);
                    if st.closure_keys[query][pattern].is_some() {
                        st.tracks[query][pattern].recorded.push(CachedHop {
                            schema: dest.clone(),
                            predicate: crate::system::exec::pattern_predicate(&np),
                            depth: depth + 1,
                            quality: chain_quality,
                        });
                    }
                    let origin = st.origins[query];
                    if let Some((_, term)) = np.routing_constant() {
                        st.data_lookups += 1;
                        let key = self.keyspace().key_of(term.lexical());
                        self.submit_wan(
                            origin,
                            key,
                            WanWork::Data {
                                query,
                                pattern,
                                pat: np.clone(),
                                initial: false,
                            },
                            &mut st.pending,
                        );
                    }
                    if depth + 1 < options.ttl {
                        st.mapping_fetches += 1;
                        st.tracks[query][pattern].open_fetches += 1;
                        let key = self.keyspace().key_of(dest.as_str());
                        self.submit_wan(
                            origin,
                            key,
                            WanWork::Schema {
                                query,
                                pattern,
                                schema: dest,
                                pat: np,
                                depth: depth + 1,
                                quality: chain_quality,
                            },
                            &mut st.pending,
                        );
                    }
                }
                // Expansion complete and untruncated: memoize the hop
                // list in the origin's bounded cache for the next
                // closure query sharing this key. (`recorded` empties
                // on commit, so re-entrant completion handling cannot
                // commit twice.)
                let track = &mut st.tracks[query][pattern];
                if track.open_fetches == 0
                    && !track.timed_out
                    && !track.limited
                    && !track.recorded.is_empty()
                {
                    if let Some(key) = st.closure_keys[query][pattern].clone() {
                        let hops = std::mem::take(&mut track.recorded);
                        self.caches[st.origins[query]].insert(self.mediation_epoch, key, hops);
                    }
                }
                // Follow-ups whose origin answered locally completed
                // during submission: drain them at this same instant.
                self.drain_wan_node(st.origins[query], st, plans, options, sink);
            }
        }
    }

    /// Submit a batch of plain single-pattern lookups with exponential
    /// inter-arrival times from uniformly random origins (the §2.3
    /// latency experiment): [`QueryPlan::pattern`] per query, counted
    /// as answered when ≥1 result matches, as the paper counts answered
    /// queries. A thin projection of [`Deployment::run_plans`].
    pub fn run_queries(&mut self, queries: &[TriplePatternQuery]) -> BatchReport {
        let plans: Vec<QueryPlan> = queries.iter().cloned().map(QueryPlan::pattern).collect();
        let rep = self.run_plans(
            &plans,
            &WanBatchOptions {
                ttl: 0,
                mean_interarrival: Some(self.config.mean_interarrival),
                limit: None,
            },
        );
        BatchReport {
            latencies: rep.latencies,
            submitted: rep.submitted,
            answered: rep.answered,
            not_found: rep.not_found,
            timed_out: rep.timed_out,
            mean_hops: rep.mean_hops,
            messages: rep.messages,
            wall: rep.wall,
        }
    }

    /// Disseminate each query through the mapping network over the
    /// event-driven deployment, iterative strategy (§4):
    /// [`QueryPlan::search`] per query. A thin projection of
    /// [`Deployment::run_plans`].
    pub fn run_reformulated_queries(
        &mut self,
        queries: &[TriplePatternQuery],
        ttl: usize,
    ) -> ReformulatedBatchReport {
        let plans: Vec<QueryPlan> = queries.iter().cloned().map(QueryPlan::search).collect();
        let rep = self.run_plans(
            &plans,
            &WanBatchOptions {
                ttl,
                mean_interarrival: None,
                limit: None,
            },
        );
        ReformulatedBatchReport {
            latencies: rep.latencies,
            submitted: rep.submitted,
            answered: rep.answered,
            skipped: rep.skipped,
            mapping_fetches: rep.mapping_fetches,
            data_lookups: rep.data_lookups,
            timed_out: rep.timed_out,
            mean_schemas: rep.mean_schemas,
            messages: rep.messages,
        }
    }

    /// Resolve conjunctive queries over the event-driven deployment
    /// (§2.3): [`QueryPlan::conjunctive`] per query — every pattern is
    /// disseminated through the mapping network (iterative, independent
    /// join: the origin collects each pattern's bindings from all
    /// reachable schemas, then joins locally). A thin projection of
    /// [`Deployment::run_plans`].
    pub fn run_conjunctive_queries(
        &mut self,
        queries: &[ConjunctiveQuery],
        ttl: usize,
    ) -> ConjunctiveWanReport {
        let plans: Vec<QueryPlan> = queries
            .iter()
            .cloned()
            .map(QueryPlan::conjunctive)
            .collect();
        let rep = self.run_plans(
            &plans,
            &WanBatchOptions {
                ttl,
                mean_interarrival: None,
                limit: None,
            },
        );
        ConjunctiveWanReport {
            latencies: rep.latencies,
            submitted: queries.len(),
            answered: rep.answered,
            mean_rows: rep.mean_rows,
            unroutable_patterns: rep.unroutable_patterns,
            mapping_fetches: rep.mapping_fetches,
            data_lookups: rep.data_lookups,
            timed_out: rep.timed_out,
            messages: rep.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvine_workload::{QueryConfig, QueryGenerator, Workload, WorkloadConfig};

    fn small_deployment(seed: u64) -> (Deployment, Workload) {
        let w = Workload::generate(WorkloadConfig::small(seed));
        let cfg = DeploymentConfig {
            peers: 48,
            // Homogeneous machines: unit tests should not depend on the
            // heavy-tailed 2007 calibration.
            network: gridvine_netsim::NetworkConfig::planetlab(),
            ..DeploymentConfig::paper(seed)
        };
        let mut d = Deployment::new(cfg);
        let triples: Vec<Triple> = w.all_triples().into_iter().map(|(_, t)| t).collect();
        d.preload(triples);
        (d, w)
    }

    #[test]
    fn preload_places_triples_with_replicas() {
        let (d, w) = small_deployment(1);
        let total: usize = (0..48)
            .map(|i| d.network().node(NodeId::from_index(i)).store().len())
            .sum();
        // Three index keys per triple, each placed on ≥1 peer.
        assert!(total >= 3 * w.triple_count() / 2, "placed {total}");
    }

    #[test]
    fn queries_get_answered_with_realistic_latencies() {
        let (mut d, w) = small_deployment(2);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(3);
        let queries: Vec<TriplePatternQuery> =
            gen.batch(60, &mut r).into_iter().map(|g| g.query).collect();
        let report = d.run_queries(&queries);
        assert_eq!(report.submitted, 60);
        assert!(report.answered > 20, "answered {}", report.answered);
        assert_eq!(report.timed_out, 0);
        assert!(report.mean_hops >= 1.0);
        let mut lat = report.latencies.clone();
        // Typical WAN queries pay several hops of processing + RTT
        // (queries whose origin happens to own the key finish locally,
        // so the minimum can be ~0 — but not the median).
        assert!(lat.median() > 0.02, "median {}", lat.median());
        // And the batch's tail stays within the timeout.
        assert!(lat.quantile(1.0) < 30.0);
    }

    #[test]
    fn batches_are_deterministic() {
        let run = |seed| {
            let (mut d, w) = small_deployment(seed);
            let gen = QueryGenerator::new(&w, QueryConfig::default());
            let mut r = rng::seeded(9);
            let queries: Vec<TriplePatternQuery> =
                gen.batch(30, &mut r).into_iter().map(|g| g.query).collect();
            let rep = d.run_queries(&queries);
            (rep.answered, rep.messages, rep.wall)
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn figure2_query_finds_aspergillus_over_the_wire() {
        let (mut d, _) = small_deployment(5);
        let q = TriplePatternQuery::example_aspergillus();
        let report = d.run_queries(&[q]);
        // EMBL#Organism data exists in every small workload.
        assert_eq!(report.answered, 1, "{report:?}");
    }

    #[test]
    fn object_prefix_plans_are_skipped_on_the_wan() {
        // The asynchronous protocol has no range retrieve; the plan
        // driver reports the sweep as skipped rather than mis-routing.
        let (mut d, _) = small_deployment(12);
        let q = TriplePatternQuery::new(
            "x",
            gridvine_rdf::TriplePattern::new(
                gridvine_rdf::PatternTerm::var("x"),
                gridvine_rdf::PatternTerm::var("p"),
                gridvine_rdf::PatternTerm::constant(gridvine_rdf::Term::literal("Aspergillus%")),
            ),
        )
        .unwrap();
        let rep = d.run_plans(
            &[QueryPlan::object_prefix(q)],
            &WanBatchOptions {
                ttl: 0,
                mean_interarrival: None,
                limit: None,
            },
        );
        assert_eq!(rep.skipped, 1);
        assert_eq!(rep.submitted, 0);
        assert_eq!(rep.messages, 0);
    }

    /// Wire a deployment with a manual mapping chain over the workload
    /// schemas, preloaded into the DHT.
    fn chained_deployment(seed: u64) -> (Deployment, Workload) {
        let (mut d, w) = small_deployment(seed);
        let mut registry = gridvine_semantic::MappingRegistry::new();
        for s in &w.schemas {
            registry.add_schema(s.clone());
        }
        for i in 0..w.schemas.len() - 1 {
            let a = w.schemas[i].id().clone();
            let b = w.schemas[i + 1].id().clone();
            let corrs = w.ground_truth.correct_pairs(&a, &b);
            if !corrs.is_empty() {
                registry.add_mapping(
                    a,
                    b,
                    gridvine_semantic::MappingKind::Equivalence,
                    gridvine_semantic::Provenance::Manual,
                    corrs,
                );
            }
        }
        let mappings: Vec<Mapping> = registry.mappings().cloned().collect();
        d.preload_mediation(w.schemas.clone(), mappings.iter());
        (d, w)
    }

    #[test]
    fn reformulated_queries_reach_other_schemas_over_the_wire() {
        let (mut d, w) = chained_deployment(6);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let fig2 = gen.figure2();
        let report = d.run_reformulated_queries(std::slice::from_ref(&fig2.query), 10);
        assert_eq!(report.submitted, 1);
        assert_eq!(report.answered, 1, "{report:?}");
        assert_eq!(report.timed_out, 0);
        // The chain covers every schema carrying the organism concept.
        assert!(report.mean_schemas > 1.0, "{report:?}");
        assert!(report.mapping_fetches >= 1);
        assert!(report.data_lookups > 1, "reformulations issued lookups");
    }

    #[test]
    fn limited_closure_sends_strictly_fewer_wan_messages() {
        // k = 1 on a query whose closure reaches many schemas: once one
        // binding landed, mapping-fetch completions stop expanding, so
        // the limited batch must carry strictly fewer messages (and
        // issue strictly fewer lookups) than the unlimited one.
        let run = |limit: Option<usize>| {
            let (mut d, w) = chained_deployment(6);
            let gen = QueryGenerator::new(&w, QueryConfig::default());
            let fig2 = gen.figure2();
            let rep = d.run_plans(
                &[QueryPlan::search(fig2.query.clone())],
                &WanBatchOptions {
                    ttl: 10,
                    mean_interarrival: None,
                    limit,
                },
            );
            (rep.answered, rep.messages, rep.data_lookups)
        };
        let (full_answered, full_messages, full_lookups) = run(None);
        let (lim_answered, lim_messages, lim_lookups) = run(Some(1));
        assert_eq!(full_answered, 1);
        assert_eq!(lim_answered, 1, "the capped query still answers");
        assert!(
            lim_messages < full_messages,
            "limit 1 must cut messages: {lim_messages} vs {full_messages}"
        );
        assert!(lim_lookups < full_lookups);
    }

    #[test]
    fn streamed_partials_arrive_in_completion_order_and_cover_answers() {
        let (mut d, w) = chained_deployment(6);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(8);
        let queries: Vec<TriplePatternQuery> =
            gen.batch(20, &mut r).into_iter().map(|g| g.query).collect();
        let plans: Vec<QueryPlan> = queries.into_iter().map(QueryPlan::search).collect();
        let mut partials: Vec<(usize, gridvine_netsim::SimTime, usize)> = Vec::new();
        let rep = d.run_plans_with(
            &plans,
            &WanBatchOptions {
                ttl: 6,
                mean_interarrival: None,
                limit: None,
            },
            &mut |p| partials.push((p.query, p.at, p.bindings.len())),
        );
        assert!(rep.answered > 0);
        // Partials stream at their actual completion instants: the
        // event-driven pump delivers them in non-decreasing sim time.
        assert!(partials.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(partials.iter().all(|&(_, _, n)| n > 0));
        // Every answered query streamed at least one partial.
        let with_partials: BTreeSet<usize> = partials.iter().map(|&(q, _, _)| q).collect();
        assert_eq!(with_partials.len(), rep.answered);
        // Streaming is observational: the report is identical shape.
        assert_eq!(rep.submitted, 20);
    }

    #[test]
    fn warm_origin_replays_closures_without_mapping_fetches() {
        // The same closure query submitted many times in one batch:
        // whenever the random origin repeats, the per-origin cache
        // replays the recorded hops — zero mapping fetches for those
        // queries, identical answers.
        let reps = 30usize;
        let run = |capacity: usize| {
            let (mut d, w) = {
                let (mut d, w) = small_deployment(6);
                d.config.closure_cache_capacity = capacity;
                d.caches = (0..d.config.peers)
                    .map(|_| ClosureCache::bounded(capacity))
                    .collect();
                let mut registry = gridvine_semantic::MappingRegistry::new();
                for s in &w.schemas {
                    registry.add_schema(s.clone());
                }
                for i in 0..w.schemas.len() - 1 {
                    let a = w.schemas[i].id().clone();
                    let b = w.schemas[i + 1].id().clone();
                    let corrs = w.ground_truth.correct_pairs(&a, &b);
                    if !corrs.is_empty() {
                        registry.add_mapping(
                            a,
                            b,
                            gridvine_semantic::MappingKind::Equivalence,
                            gridvine_semantic::Provenance::Manual,
                            corrs,
                        );
                    }
                }
                let mappings: Vec<Mapping> = registry.mappings().cloned().collect();
                d.preload_mediation(w.schemas.clone(), mappings.iter());
                (d, w)
            };
            let gen = QueryGenerator::new(&w, QueryConfig::default());
            let fig2 = gen.figure2();
            let plans: Vec<QueryPlan> = (0..reps)
                .map(|_| QueryPlan::search(fig2.query.clone()))
                .collect();
            // Spread arrivals out so earlier queries complete (and
            // warm their origin's cache) before later ones submit —
            // all at t=0 would be uniformly cold.
            let rep = d.run_plans(
                &plans,
                &WanBatchOptions {
                    ttl: 10,
                    mean_interarrival: Some(SimDuration::from_secs(30)),
                    limit: None,
                },
            );
            (rep, d.cached_closures())
        };
        let (cold, cached) = run(0); // capacity 0: caching disabled
        let (warm, warm_cached) = run(64);
        assert_eq!(cached, 0);
        assert!(warm_cached > 0, "origins memoized the closure");
        assert_eq!(cold.answered, reps);
        assert_eq!(warm.answered, reps, "replays answer identically");
        assert_eq!(cold.cache_hits, 0);
        assert!(warm.cache_hits > 0, "repeated origins hit the cache");
        assert!(
            warm.mapping_fetches < cold.mapping_fetches,
            "cache hits skip mapping fetches: {} vs {}",
            warm.mapping_fetches,
            cold.mapping_fetches
        );
        assert!(warm.messages < cold.messages);
    }

    #[test]
    fn warm_origin_replays_join_closures_without_mapping_fetches() {
        // Same story as the closure test above, but for `Join` plans:
        // every pattern of a conjunctive query routes its closure
        // expansion through the origin's cache, so a repeated join from
        // a warm origin replays every pattern's recorded hops — fewer
        // mapping fetches, identical answers.
        let reps = 30usize;
        let run = |capacity: usize| {
            let (mut d, w) = chained_deployment(6);
            d.config.closure_cache_capacity = capacity;
            d.caches = (0..d.config.peers)
                .map(|_| ClosureCache::bounded(capacity))
                .collect();
            let gen = QueryGenerator::new(&w, QueryConfig::default());
            let mut r = rng::seeded(5);
            let q = gen.conjunctive(&mut r).query;
            let plans: Vec<QueryPlan> = (0..reps)
                .map(|_| QueryPlan::conjunctive(q.clone()))
                .collect();
            let rep = d.run_plans(
                &plans,
                &WanBatchOptions {
                    ttl: 6,
                    mean_interarrival: Some(SimDuration::from_secs(30)),
                    limit: None,
                },
            );
            (rep, d.cached_closures())
        };
        let (cold, cached) = run(0); // capacity 0: caching disabled
        let (warm, warm_cached) = run(64);
        assert_eq!(cached, 0);
        assert!(warm_cached > 0, "origins memoized per-pattern closures");
        assert_eq!(cold.answered, warm.answered, "replays answer identically");
        assert_eq!(cold.cache_hits, 0);
        assert!(warm.cache_hits > 0, "repeated origins hit the cache");
        assert!(
            warm.mapping_fetches < cold.mapping_fetches,
            "join cache hits skip mapping fetches: {} vs {}",
            warm.mapping_fetches,
            cold.mapping_fetches
        );
    }

    #[test]
    fn reformulation_latency_exceeds_plain_lookup_latency() {
        // The same query answered with and without dissemination: the
        // reformulated run waits for mapping fetches + deeper lookups,
        // so its end-to-end latency dominates the plain lookup's.
        let (mut d, w) = chained_deployment(7);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(4);
        let queries: Vec<TriplePatternQuery> =
            gen.batch(20, &mut r).into_iter().map(|g| g.query).collect();
        let plain = d.run_queries(&queries);
        let reformulated = d.run_reformulated_queries(&queries, 10);
        assert!(reformulated.answered >= plain.answered, "{reformulated:?}");
        let mut pl = plain.latencies.clone();
        let mut rl = reformulated.latencies.clone();
        assert!(
            rl.median() > pl.median(),
            "reformulated median {} must exceed plain {}",
            rl.median(),
            pl.median()
        );
    }

    #[test]
    fn ttl_zero_disables_dissemination() {
        let (mut d, w) = chained_deployment(8);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let fig2 = gen.figure2();
        let report = d.run_reformulated_queries(std::slice::from_ref(&fig2.query), 0);
        assert_eq!(report.mapping_fetches, 0);
        assert_eq!(report.data_lookups, 1);
        assert!(report.mean_schemas <= 1.0);
    }

    #[test]
    fn conjunctive_queries_join_over_the_wire() {
        let (mut d, w) = chained_deployment(10);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(5);
        let queries: Vec<ConjunctiveQuery> = gen
            .conjunctive_batch(12, &mut r)
            .into_iter()
            .map(|g| g.query)
            .collect();
        let rep = d.run_conjunctive_queries(&queries, 6);
        assert_eq!(rep.submitted, 12);
        assert!(rep.answered > 4, "{rep:?}");
        assert_eq!(rep.unroutable_patterns, 0);
        assert!(rep.mean_rows >= 1.0);
        // Two patterns per query: at least two data lookups each.
        assert!(rep.data_lookups >= 24, "{rep:?}");
        assert!(rep.mapping_fetches > 0);
    }

    #[test]
    fn conjunctive_wan_agrees_with_synchronous_system() {
        // The WAN driver and the synchronous executor resolve the same
        // query over the same corpus + chain: identical solution rows.
        use crate::exec::QueryOptions;
        use crate::system::{GridVineConfig, GridVineSystem, Strategy};
        use crate::JoinMode;
        let (mut d, w) = chained_deployment(11);
        let gen = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(6);
        let g = gen.conjunctive(&mut r);

        // Synchronous twin.
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 48,
            ..GridVineConfig::default()
        });
        let p0 = gridvine_pgrid::PeerId(0);
        for s in &w.schemas {
            sys.insert_schema(p0, s.clone()).unwrap();
        }
        for s in &w.schemas {
            sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
        }
        for i in 0..w.schemas.len() - 1 {
            let a = w.schemas[i].id().clone();
            let b = w.schemas[i + 1].id().clone();
            let corrs = w.ground_truth.correct_pairs(&a, &b);
            if !corrs.is_empty() {
                sys.insert_mapping(
                    p0,
                    a,
                    b,
                    gridvine_semantic::MappingKind::Equivalence,
                    gridvine_semantic::Provenance::Manual,
                    corrs,
                )
                .unwrap();
            }
        }
        let sync = sys
            .execute(
                p0,
                &QueryPlan::conjunctive(g.query.clone()),
                &QueryOptions::new()
                    .strategy(Strategy::Iterative)
                    .join_mode(JoinMode::Independent),
            )
            .unwrap();
        let wan = d.run_conjunctive_queries(std::slice::from_ref(&g.query), 10);
        // Row multisets are not directly exposed by the WAN report; the
        // answered flag and row count must agree.
        assert_eq!(wan.answered == 1, !sync.rows.is_empty(), "{}", g.query);
        if wan.answered == 1 {
            assert!(
                (wan.mean_rows - sync.rows.len() as f64).abs() < 1e-9,
                "rows {} vs {}",
                wan.mean_rows,
                sync.rows.len()
            );
        }
    }

    #[test]
    fn reformulated_batches_are_deterministic() {
        let run = || {
            let (mut d, w) = chained_deployment(9);
            let gen = QueryGenerator::new(&w, QueryConfig::default());
            let mut r = rng::seeded(2);
            let queries: Vec<TriplePatternQuery> =
                gen.batch(15, &mut r).into_iter().map(|g| g.query).collect();
            let rep = d.run_reformulated_queries(&queries, 6);
            (
                rep.answered,
                rep.messages,
                rep.data_lookups,
                rep.mapping_fetches,
            )
        };
        assert_eq!(run(), run());
    }
}
