//! The physical executor's blocking surface: [`GridVineSystem::execute`]
//! evaluates every logical [`QueryPlan`] by draining a pull-based
//! [`QuerySession`](super::session::QuerySession).
//!
//! ## Migration from the legacy entry points
//!
//! The four monolithic `SearchFor` methods (`resolve_pattern`,
//! `resolve_object_prefix`, `search`, `search_conjunctive`) went
//! through one deprecation cycle as shims and are now **deleted**;
//! callers build a plan and either drain it blockingly or pull it
//! incrementally:
//!
//! | Removed entry point | Blocking replacement |
//! |---|---|
//! | `sys.resolve_pattern(p, &q)` | `sys.execute(p, &QueryPlan::pattern(q), &QueryOptions::default())` |
//! | `sys.resolve_object_prefix(p, &q)` | `sys.execute(p, &QueryPlan::object_prefix(q), &QueryOptions::default())` |
//! | `sys.search(p, &q, strategy)` | `sys.execute(p, &QueryPlan::search(q), &QueryOptions::new().strategy(strategy))` |
//! | `sys.search_conjunctive(p, &q, strategy, mode)` | `sys.execute(p, &QueryPlan::conjunctive(q), &QueryOptions::new().strategy(strategy).join_mode(mode))` |
//!
//! For incremental consumption (first-result latency, early
//! termination, per-hop provenance) use
//! [`GridVineSystem::open`](super::session) instead of `execute` — the
//! two are equivalent on results and message accounting when the
//! session is drained; see the [`super::session`] module docs
//! for the event protocol.
//!
//! The legacy per-call outcome types map onto [`QueryOutcome`]:
//! `SearchOutcome::results` was [`QueryOutcome::terms`] of the
//! distinguished variable, `ConjunctiveOutcome::bindings` was
//! [`QueryOutcome::rows`], and all counters live in the shared
//! [`ExecStats`].
//!
//! ## Execution model
//!
//! Every plan bottoms out in *routed pattern resolutions*: route to
//! `Hash(routing constant)`, charge the response message, and evaluate
//! the destination peer's indexed `DB_p` — **streaming** matches off
//! the store's granule-batched cursor layer
//! ([`TripleStore::match_pattern`](gridvine_rdf::TripleStore::match_pattern)),
//! so a destination materializes exactly the bindings it ships.
//! Closure plans drive a step-wise
//! [`ClosureWalk`] over the mapping
//! network (depth-first, one hop per session pull); join plans
//! feed the per-pattern binding sets through the
//! [`hash-join engine`](gridvine_rdf::join) in the planner's order.
//! Repeated iterative closures over an unchanged mapping network replay
//! the epoch-keyed [`ClosureCache`](gridvine_semantic::ClosureCache)
//! instead of re-walking the BFS (see the session docs).
//!
//! ```
//! use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
//! use gridvine_pgrid::PeerId;
//! use gridvine_rdf::{Term, Triple, TriplePatternQuery};
//! use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
//!
//! let mut sys = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))?;
//! sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))?;
//! sys.insert_mapping(p, "EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")])?;
//! sys.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger")))?;
//! sys.insert_triple(p, Triple::new("seq:NEN94295-05", "EMP#SystematicName",
//!     Term::literal("Aspergillus oryzae")))?;
//!
//! let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
//! let out = sys.execute(PeerId(3), &plan, &QueryOptions::new().strategy(Strategy::Recursive))?;
//! assert_eq!(out.rows.len(), 2); // both records, across schemas
//! assert_eq!(out.stats.reformulations, 1);
//! assert!(out.stats.messages > 0);
//! # Ok::<(), gridvine_core::SystemError>(())
//! ```

use super::conjunctive::JoinMode;
use super::*;
use crate::plan::QueryPlan;
use gridvine_rdf::{Binding, PatternTerm, TriplePattern, Uri};
use gridvine_semantic::{CachedHop, ClosureKey, ClosureWalk, Mapping};

/// Physical execution knobs for one [`GridVineSystem::execute`] /
/// [`GridVineSystem::open`] call: a builder carrying the reformulation
/// [`Strategy`], the conjunctive [`JoinMode`], a TTL override and an
/// optional result cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    pub(crate) strategy: Strategy,
    pub(crate) join_mode: JoinMode,
    pub(crate) ttl: Option<usize>,
    pub(crate) limit: Option<usize>,
    pub(crate) window: usize,
    pub(crate) max_retries: usize,
}

/// Default retransmit budget of one routed request (see
/// [`QueryOptions::max_retries`]).
pub(crate) const DEFAULT_MAX_RETRIES: usize = 3;

impl Default for QueryOptions {
    /// Iterative reformulation, bound-substitution joins, the system's
    /// configured TTL, unlimited results, one subquery in flight.
    fn default() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::Iterative,
            join_mode: JoinMode::BoundSubstitution,
            ttl: None,
            limit: None,
            window: 1,
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }
}

impl QueryOptions {
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// How reformulated queries travel the mapping network (§4).
    pub fn strategy(mut self, strategy: Strategy) -> QueryOptions {
        self.strategy = strategy;
        self
    }

    /// How conjunctive binding sets are combined (ablation A4).
    pub fn join_mode(mut self, mode: JoinMode) -> QueryOptions {
        self.join_mode = mode;
        self
    }

    /// Override the system's reformulation TTL for this query.
    pub fn ttl(mut self, ttl: usize) -> QueryOptions {
        self.ttl = Some(ttl);
        self
    }

    /// Keep up to `window` subqueries of this session in flight on the
    /// simulated clock (see [`crate::system::sched`]): independent
    /// closure hops, prefix probes and bound-join groups pipeline
    /// instead of serializing, cutting simulated first-result latency.
    /// The row multiset and the total message count are identical for
    /// every window size — only the clock (and event delivery order)
    /// changes. Clamped to at least 1; the default of 1 reproduces the
    /// strictly serial pull order.
    pub fn window(mut self, window: usize) -> QueryOptions {
        self.window = window.max(1);
        self
    }

    /// Stop after `limit` distinct result rows — **genuine early
    /// termination**: the session stops advancing the closure walk (or
    /// the bound-join group queue) the moment the cap is reached, so
    /// the remaining remote subqueries are never issued and a limited
    /// query sends strictly fewer messages than an unlimited one
    /// whenever any dissemination remained. The kept rows are the
    /// first `limit` distinct rows in (deterministic) discovery order,
    /// returned sorted.
    pub fn limit(mut self, limit: usize) -> QueryOptions {
        self.limit = Some(limit);
        self
    }

    /// Retransmit budget per routed request: a request whose reply
    /// times out (lost under [`GridVineConfig::fault`](crate::GridVineConfig),
    /// or the destination is churn-down) is retransmitted with
    /// exponential backoff + jitter up to `retries` times before the
    /// unit resolves as a recorded failure — the closure walk
    /// terminates that branch and the session continues with partial
    /// results (see [`crate::system::sched`]). Irrelevant under the
    /// default null fault config with no churn, where no request ever
    /// times out.
    pub fn max_retries(mut self, retries: usize) -> QueryOptions {
        self.max_retries = retries;
        self
    }
}

/// Execution counters shared by every plan shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Overlay messages consumed.
    pub messages: u64,
    /// Routed pattern resolutions (original patterns, reformulations
    /// and bound-substituted instances all count; prefix sweeps count
    /// one per visited region).
    pub subqueries: usize,
    /// Mapping applications across the whole plan.
    pub reformulations: usize,
    /// Schemas reached, summed over patterns (each pattern's traversal
    /// counts its own distinct set, including its own schema).
    pub schemas_visited: usize,
    /// Resolutions that could not be routed or resolved.
    pub failures: usize,
    /// Matching bindings returned by destination peers before any join
    /// or dedup — a proxy for result bytes on the wire.
    pub bindings_shipped: usize,
    /// High-water mark of simultaneously in-flight subqueries (1 for a
    /// fully serial session; up to [`QueryOptions::window`]).
    pub max_in_flight: usize,
    /// Mapping-list retrieves performed (closure discovery steps that
    /// actually went to the network — warm cache replays skip these).
    pub mapping_fetches: usize,
    /// Closure-cache lookups served from a coherent entry.
    pub cache_hits: usize,
    /// Closure-cache lookups that found no coherent entry.
    pub cache_misses: usize,
    /// Closure-cache entries displaced by a capacity bound.
    pub cache_evictions: usize,
    /// Routed request/response exchanges driven through the retry
    /// protocol (see [`crate::system::sched`]); charged at issue.
    pub requests: usize,
    /// Protocol-level transmissions: first sends plus retransmits
    /// (`sends == requests + retransmits` always holds).
    pub sends: usize,
    /// Request attempts whose reply never arrived before the retry
    /// timer fired (lost, or the destination was churn-down).
    pub timeouts: usize,
    /// Timed-out requests sent again after backoff.
    pub retransmits: usize,
    /// Duplicated unit replies dropped by request-id dedup. Charged at
    /// *delivery* (unlike every other counter, which charges at
    /// issue), so duplicates of a session's final units may land after
    /// the last per-unit `Stats` delta was emitted.
    pub duplicates_dropped: usize,
    /// Cycle probes issued by quality-assessment passes
    /// ([`GridVineSystem::assessment_pass`]): one routed retrieve per
    /// mapping cycle, driven through the retry protocol, so every probe
    /// costs messages, requests and simulated latency like any
    /// subquery. Always 0 for query sessions.
    pub assessment_probes: usize,
    /// Mappings moved to
    /// [`MappingStatus::Quarantined`](gridvine_semantic::MappingStatus)
    /// by an assessment pass (re-confirmed quarantines of paroled edges
    /// included). Always 0 for query sessions.
    pub quarantined_mappings: usize,
    /// Pattern resolutions served off the replica-aware routing path
    /// (a placement rule covered the routed key — see
    /// [`crate::system::place`]). Always 0 under the null policy.
    pub replica_hits: usize,
    /// Replica holders skipped because they were down (crashed, or the
    /// retry budget ran out against a churn-down holder) before a live
    /// holder served the unit.
    pub failovers: usize,
    /// Heat-spike placement changes (replica creations and migrations)
    /// charged to this session's units.
    pub migrations: usize,
}

/// What one [`GridVineSystem::execute`] call produced: solution rows
/// (projected onto the distinguished variables, deduplicated, sorted)
/// plus the shared [`ExecStats`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Solution rows. Single-pattern plans bind exactly the
    /// distinguished variable; join plans bind the query's
    /// distinguished variables.
    pub rows: Vec<Binding>,
    pub stats: ExecStats,
}

impl QueryOutcome {
    /// Distinct terms bound to `var` across the rows, sorted.
    pub fn terms(&self, var: &str) -> Vec<Term> {
        let mut out: Vec<Term> = self
            .rows
            .iter()
            .filter_map(|b| b.get(var).cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Accessions extracted from `seq:` subjects among the bound terms
    /// (for recall against workload ground truth).
    pub fn accessions(&self) -> BTreeSet<String> {
        self.rows
            .iter()
            .flat_map(|b| b.iter())
            .filter_map(|(_, t)| t.as_uri())
            .filter_map(|u| u.as_str().strip_prefix("seq:"))
            .map(|s| s.to_string())
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// One pattern's traversal of the mapping network (the per-pattern
/// inner loop of join plans; single-pattern closures run the same hops
/// through the incremental session state instead).
#[derive(Debug, Clone, Default)]
pub(crate) struct NetSweep {
    pub(crate) bindings: Vec<Binding>,
    /// Per-hop counters accumulated via [`SweepHop::charge`]
    /// (`bindings_shipped` stays 0 here — the sweep level charges it
    /// from `bindings`).
    stats: ExecStats,
}

impl NetSweep {
    /// Fold this pattern-level traversal into the plan-level stats.
    pub(crate) fn charge(&self, stats: &mut ExecStats) {
        stats.subqueries += self.stats.subqueries;
        stats.reformulations += self.stats.reformulations;
        stats.schemas_visited += self.stats.schemas_visited;
        stats.failures += self.stats.failures;
        stats.bindings_shipped += self.bindings.len();
        stats.mapping_fetches += self.stats.mapping_fetches;
        stats.cache_hits += self.stats.cache_hits;
        stats.cache_misses += self.stats.cache_misses;
        stats.cache_evictions += self.stats.cache_evictions;
    }
}

/// A one-variable solution row.
pub(crate) fn one_var_row(var: &str, term: Term) -> Binding {
    let mut b = Binding::new();
    b.bind(var.to_string(), term);
    b
}

/// `pattern` with its predicate constant swapped — how a memoized
/// closure hop is replayed for any pattern sharing the predicate.
pub(crate) fn with_predicate(pattern: &TriplePattern, predicate: &Uri) -> TriplePattern {
    TriplePattern::new(
        pattern.subject.clone(),
        PatternTerm::Const(Term::Uri(predicate.clone())),
        pattern.object.clone(),
    )
}

/// The predicate URI of a schema'd pattern (guaranteed by
/// `pattern_schema` having succeeded on it).
pub(crate) fn pattern_predicate(pattern: &TriplePattern) -> Uri {
    match pattern.predicate.as_const() {
        Some(Term::Uri(u)) => u.clone(),
        _ => unreachable!("schema'd patterns carry a constant URI predicate"),
    }
}

/// Incremental closure expansion of one schema'd pattern — the single
/// implementation behind both consumers: the session drives it one
/// [`ClosureSweep::resolve_next`] per pull (with
/// [`ClosureSweep::expand_pending`] skipped on early termination), the
/// bulk join sweep drains it in a loop. Both observe the identical hop
/// sequence, resolutions and cache interactions, so their accounting
/// agrees by construction.
pub(crate) enum ClosureSweep {
    /// Live walk over DHT-fetched mapping lists; `record` accumulates
    /// the hop list for the closure cache. `pending` is the hop
    /// resolved by the last `resolve_next` whose mapping discovery has
    /// not run yet. `delegate` is the intermediate peer that served
    /// the first recursive mapping discovery — the peer whose cache a
    /// completed recursive walk warms.
    ///
    /// The sweep owns its pattern (and the walk's reformulated
    /// patterns) so session state can live in a
    /// [`SessionPool`](super::pool::SessionPool) that outlives the
    /// plan borrow.
    Cold {
        pattern: TriplePattern,
        walk: ClosureWalk<(TriplePattern, PeerId, f64)>,
        record: (ClosureKey, Vec<CachedHop>),
        pending: Option<Box<PendingExpand>>,
        delegate: Option<PeerId>,
        /// A discovery failed (crashed destination): the walk is
        /// missing a subtree, so the record must never be committed —
        /// a partial closure replayed as complete would silently drop
        /// rows even after the peer recovers.
        tainted: bool,
    },
    /// Replay of a memoized closure: resolve each recorded hop's
    /// predicate from `issuer` (the origin for iterative replays, the
    /// delegate peer for recursive ones), no mapping discovery at all.
    Warm {
        pattern: TriplePattern,
        hops: std::sync::Arc<[CachedHop]>,
        next: usize,
        issuer: PeerId,
    },
}

/// What one [`ClosureSweep::expand_pending`] call did: the schemas it
/// admitted to the frontier (the session stamps their scheduler ready
/// times with the expansion's completion instant).
#[derive(Debug, Default)]
pub(crate) struct Expansion {
    pub(crate) admitted: Vec<SchemaId>,
}

/// A cold hop between its resolution and its expansion.
pub(crate) struct PendingExpand {
    schema: SchemaId,
    pat: TriplePattern,
    quality: f64,
    depth: usize,
    /// The peer that issued this hop's resolution (and, recursively,
    /// forwards the discovery).
    at_peer: PeerId,
}

/// One resolved hop of a [`ClosureSweep`].
pub(crate) struct SweepHop {
    pub(crate) schema: SchemaId,
    pub(crate) depth: usize,
    pub(crate) quality: f64,
    /// The destination's bindings, or `None` when the resolution
    /// failed (charged as a failure, the walk continues).
    pub(crate) bindings: Option<Vec<Binding>>,
}

impl SweepHop {
    /// Fold this hop into the consumer's counters — the one charging
    /// rule both the session and the bulk sweep apply, so their
    /// accounting cannot drift. `bindings_shipped` is charged by the
    /// consumer (it decides whether bindings are shipped per hop or
    /// aggregated per sweep).
    pub(crate) fn charge(&self, stats: &mut ExecStats) {
        stats.subqueries += 1;
        stats.schemas_visited += 1;
        if self.depth > 0 {
            stats.reformulations += 1;
        }
        if self.bindings.is_none() {
            stats.failures += 1;
        }
    }
}

impl ClosureSweep {
    /// Start a sweep for one schema'd pattern. The **iterative**
    /// strategy consults the *origin* peer's bounded cache here: a
    /// coherent entry means a warm replay (no BFS, no mapping-list
    /// retrieves). The **recursive** strategy cannot know its delegate
    /// peer before routing the first discovery, so its cache consult
    /// happens inside [`ClosureSweep::expand_pending`] instead. Either
    /// way exactly one lookup is charged per sweep
    /// (`cache_hits`/`cache_misses`).
    #[allow(clippy::too_many_arguments)] // one call site per consumer; a
                                         // params struct would just rename the arguments
    pub(crate) fn open(
        sys: &mut GridVineSystem,
        origin: PeerId,
        pattern: &TriplePattern,
        schema: SchemaId,
        attr: String,
        strategy: Strategy,
        ttl: usize,
        stats: &mut ExecStats,
    ) -> ClosureSweep {
        let key = ClosureKey {
            schema: schema.clone(),
            attr,
            ttl,
        };
        if strategy == Strategy::Iterative {
            let epoch = sys.registry.epoch();
            if let Some(hops) = sys.exec_state_mut(origin).cache.lookup(epoch, &key) {
                stats.cache_hits += 1;
                return ClosureSweep::Warm {
                    pattern: pattern.clone(),
                    hops,
                    next: 0,
                    issuer: origin,
                };
            }
            stats.cache_misses += 1;
        }
        ClosureSweep::Cold {
            pattern: pattern.clone(),
            walk: ClosureWalk::new(schema, (pattern.clone(), origin, 1.0)),
            record: (key, Vec::new()),
            pending: None,
            delegate: None,
            tainted: false,
        }
    }

    /// No hops left to resolve or expand.
    pub(crate) fn is_exhausted(&self) -> bool {
        match self {
            ClosureSweep::Cold { walk, pending, .. } => walk.is_exhausted() && pending.is_none(),
            ClosureSweep::Warm { hops, next, .. } => *next >= hops.len(),
        }
    }

    /// A resolved hop is waiting for its expansion.
    pub(crate) fn has_pending(&self) -> bool {
        matches!(
            self,
            ClosureSweep::Cold {
                pending: Some(_),
                ..
            }
        )
    }

    /// Pop and resolve the next hop (expansion deferred to
    /// [`ClosureSweep::expand_pending`], so an early-terminating caller
    /// never pays for discovery it will not use). Returns `None` once
    /// the sweep is drained.
    pub(crate) fn resolve_next(
        &mut self,
        sys: &mut GridVineSystem,
        origin: PeerId,
    ) -> Result<Option<SweepHop>, SystemError> {
        match self {
            ClosureSweep::Warm {
                pattern,
                hops,
                next,
                issuer,
            } => {
                let Some(hop) = hops.get(*next).cloned() else {
                    return Ok(None);
                };
                *next += 1;
                let pat = if hop.depth == 0 {
                    pattern.clone()
                } else {
                    with_predicate(pattern, &hop.predicate)
                };
                // Iterative replays issue from the origin (which is
                // also `issuer`); recursive replays from the delegate
                // peer that memoized the closure.
                let from = if hop.depth == 0 { origin } else { *issuer };
                let bindings = sys.resolve_pattern_once(from, &pat).ok();
                Ok(Some(SweepHop {
                    schema: hop.schema,
                    depth: hop.depth,
                    quality: hop.quality,
                    bindings,
                }))
            }
            ClosureSweep::Cold {
                walk,
                record,
                pending,
                ..
            } => {
                debug_assert!(
                    pending.is_none(),
                    "expand or discard the previous hop first"
                );
                let Some((schema, (pat, at_peer, quality), depth)) = walk.next_depth_first() else {
                    return Ok(None);
                };
                record.1.push(CachedHop {
                    schema: schema.clone(),
                    predicate: pattern_predicate(&pat),
                    depth,
                    quality,
                });
                let bindings = sys.resolve_pattern_once(at_peer, &pat).ok();
                let hop = SweepHop {
                    schema: schema.clone(),
                    depth,
                    quality,
                    bindings,
                };
                *pending = Some(Box::new(PendingExpand {
                    schema,
                    pat,
                    quality,
                    depth,
                    at_peer,
                }));
                Ok(Some(hop))
            }
        }
    }

    /// Expand the hop the last `resolve_next` produced: discover the
    /// mappings applicable at its schema (within the TTL) and admit the
    /// newly reachable schemas (a no-op on warm replays — the recorded
    /// closure already is the expansion). When the walk exhausts here,
    /// the recorded closure is committed to a per-peer cache — the
    /// origin's for iterative walks, the delegate's for recursive ones;
    /// an early-terminating caller that stops pulling (or calls
    /// [`ClosureSweep::discard_pending`]) never commits a partial walk.
    ///
    /// A recursive walk additionally consults the delegate peer's cache
    /// at its first discovery: on a coherent entry the sweep switches
    /// to a warm replay of the remaining recorded hops and every deeper
    /// mapping-list retrieve is skipped.
    ///
    /// A crashed discovery destination ([`SystemError::PeerDown`]) is
    /// charged as a failure and the hop is simply not expanded — the
    /// walk continues rather than hanging or erroring out.
    pub(crate) fn expand_pending(
        &mut self,
        sys: &mut GridVineSystem,
        origin: PeerId,
        strategy: Strategy,
        ttl: usize,
        stats: &mut ExecStats,
    ) -> Result<Expansion, SystemError> {
        let ClosureSweep::Cold {
            pattern,
            walk,
            record,
            pending,
            delegate,
            tainted,
        } = self
        else {
            return Ok(Expansion::default());
        };
        let Some(hop) = pending.take() else {
            return Ok(Expansion::default());
        };
        let hop = *hop;
        let mut admitted = Vec::new();
        if hop.depth < ttl {
            let (next_peer, mappings) =
                match sys.discover_mappings(origin, hop.at_peer, &hop.schema, strategy) {
                    Ok(found) => found,
                    Err(SystemError::PeerDown(_)) => {
                        stats.failures += 1;
                        *tainted = true;
                        return Ok(Expansion { admitted });
                    }
                    Err(e) => return Err(e),
                };
            stats.mapping_fetches += 1;
            if strategy == Strategy::Recursive && hop.depth == 0 {
                *delegate = Some(next_peer);
                // The delegate may have memoized this closure from an
                // earlier recursive walk: replay its tail instead of
                // chasing deeper mapping lists.
                let epoch = sys.registry.epoch();
                let cached = sys.exec_state_mut(next_peer).cache.lookup(epoch, &record.0);
                match cached {
                    Some(hops) => {
                        stats.cache_hits += 1;
                        let admitted: Vec<SchemaId> =
                            hops.iter().skip(1).map(|h| h.schema.clone()).collect();
                        let pattern = pattern.clone();
                        *self = ClosureSweep::Warm {
                            pattern,
                            hops,
                            next: 1, // depth 0 was already resolved live
                            issuer: next_peer,
                        };
                        return Ok(Expansion { admitted });
                    }
                    None => stats.cache_misses += 1,
                }
            }
            for m in mappings {
                let Some(dir) = m.applicable_from(&hop.schema) else {
                    continue;
                };
                if walk.visited(m.destination(dir)) {
                    continue;
                }
                let Some(np) = gridvine_semantic::reformulate_pattern(&hop.pat, &m, dir) else {
                    continue;
                };
                let dest = m.destination(dir).clone();
                if walk.admit(
                    dest.clone(),
                    (np, next_peer, hop.quality.min(m.quality)),
                    hop.depth + 1,
                ) {
                    admitted.push(dest);
                }
            }
        }
        if walk.is_exhausted() && !*tainted {
            let key = record.0.clone();
            let hops = std::mem::take(&mut record.1);
            let target = match strategy {
                Strategy::Iterative => Some(origin),
                Strategy::Recursive => *delegate,
            };
            if let Some(at) = target {
                let epoch = sys.registry.epoch();
                let cache = &mut sys.exec_state_mut(at).cache;
                let evictions_before = cache.counters().evictions;
                cache.insert(epoch, key, hops);
                stats.cache_evictions += (cache.counters().evictions - evictions_before) as usize;
            }
        }
        Ok(Expansion { admitted })
    }

    /// Drop the pending hop without expanding it (early termination:
    /// its discovery messages are never sent and no cache entry is
    /// committed).
    pub(crate) fn discard_pending(&mut self) {
        if let ClosureSweep::Cold { pending, .. } = self {
            *pending = None;
        }
    }
}

impl GridVineSystem {
    /// Evaluate a logical [`QueryPlan`] from `origin` under `options` —
    /// the blocking `SearchFor` entry point (§2.3, §3, §4) behind which
    /// pattern lookups, prefix range sweeps, reformulation closures and
    /// conjunctive joins all run.
    ///
    /// This is a thin drain of [`GridVineSystem::open`]: it pulls the
    /// session to completion and returns the accumulated outcome, so
    /// `execute` and a drained session are identical on results *and*
    /// message accounting (the equivalence proptests pin this). Every
    /// hop, response and replica propagation is charged on the overlay
    /// counter and reported in [`ExecStats::messages`].
    pub fn execute(
        &mut self,
        origin: PeerId,
        plan: &QueryPlan,
        options: &QueryOptions,
    ) -> Result<QueryOutcome, SystemError> {
        let mut session = self.open(origin, plan, options)?;
        while session.next_event()?.is_some() {}
        Ok(session.into_outcome())
    }

    /// Route one concrete triple pattern and return every matching
    /// binding from the destination's `DB_p`, streamed off the cursor
    /// layer; the response message is charged exactly as a `Retrieve`.
    pub(crate) fn resolve_pattern_once(
        &mut self,
        origin: PeerId,
        pattern: &TriplePattern,
    ) -> Result<Vec<Binding>, SystemError> {
        let Some((_, term)) = pattern.routing_constant() else {
            return Err(SystemError::NotRoutable);
        };
        // Replica-aware fast path: if a placement rule covers this
        // key, serve from the lowest-expected-latency live holder and
        // fail over across the replica set before reporting PeerDown.
        // Returns None under the null policy — the classic routed
        // path below then runs with untouched accounting and RNG.
        if let Some(resolved) = self.replica_route(origin, term.lexical()) {
            let dest = resolved?;
            let db = &self.local_dbs[dest.index()];
            return Ok(db.match_pattern(pattern));
        }
        let key = self.key_of(term.lexical());
        let route = self.overlay.route(origin, &key, &mut self.rng)?;
        self.overlay.charge_response(origin, route.destination);
        // The request (and the response charge) went out; the retry
        // protocol decides whether a reply ever comes back.
        self.proto_request(origin, route.destination)?;
        let db = &self.local_dbs[route.destination.index()];
        Ok(db.match_pattern(pattern))
    }

    /// Fetch the mappings applicable at `schema` per the strategy:
    /// iterative pulls the list back to the origin (one Retrieve +
    /// response); recursive forwards the query to the schema-key peer,
    /// which reads its local list for free and becomes the next hop's
    /// issuer. Returns `(issuing peer for the next hops, mappings)`.
    pub(crate) fn discover_mappings(
        &mut self,
        origin: PeerId,
        at_peer: PeerId,
        schema: &SchemaId,
        strategy: Strategy,
    ) -> Result<(PeerId, Vec<Mapping>), SystemError> {
        match strategy {
            Strategy::Iterative => Ok((origin, self.mappings_at_schema(origin, schema)?)),
            Strategy::Recursive => {
                let schema_key = self.key_of(schema.as_str());
                let route = self.overlay.route(at_peer, &schema_key, &mut self.rng)?;
                self.proto_request(at_peer, route.destination)?;
                let items = self
                    .overlay
                    .store(route.destination)
                    .get(&schema_key)
                    .to_vec();
                let maps = items
                    .into_iter()
                    .filter_map(|i| match i {
                        MediationItem::Mapping { mapping, .. } => Some(mapping),
                        _ => None,
                    })
                    .collect();
                Ok((route.destination, maps))
            }
        }
    }

    /// Resolve a pattern over the mapping network: answer it in its own
    /// schema, then in every schema reachable through active mappings
    /// (within the TTL), aggregating bindings. Patterns whose predicate
    /// is a variable (or does not name a schema) are resolved once,
    /// without reformulation — there is no schema to translate from.
    ///
    /// Under the iterative strategy the fully-expanded closure is
    /// memoized in the system's epoch-keyed
    /// [`ClosureCache`](gridvine_semantic::ClosureCache): while the
    /// mapping network is unchanged, a repeated sweep replays the
    /// recorded hops from the origin — identical resolutions, identical
    /// result bindings, but no mapping-list retrieves at all. This is
    /// the bulk (join-pattern) twin of the session's incremental
    /// closure state; both record and replay the same cache entries.
    pub(crate) fn sweep_pattern_network(
        &mut self,
        origin: PeerId,
        pattern: &TriplePattern,
        strategy: Strategy,
        ttl: usize,
    ) -> Result<NetSweep, SystemError> {
        let mut net = NetSweep::default();
        let Ok((origin_schema, attr)) = gridvine_semantic::pattern_schema(pattern) else {
            // Un-schema'd pattern: a single routed resolution.
            net.stats.subqueries = 1;
            net.bindings = self.resolve_pattern_once(origin, pattern)?;
            return Ok(net);
        };
        let mut sweep = ClosureSweep::open(
            self,
            origin,
            pattern,
            origin_schema,
            attr,
            strategy,
            ttl,
            &mut net.stats,
        );
        while let Some(hop) = sweep.resolve_next(self, origin)? {
            hop.charge(&mut net.stats);
            if let Some(bindings) = hop.bindings {
                net.bindings.extend(bindings);
            }
            sweep.expand_pending(self, origin, strategy, ttl, &mut net.stats)?;
        }
        Ok(net)
    }
}
