//! The streaming physical executor: one entry point —
//! [`GridVineSystem::execute`] — evaluates every logical
//! [`QueryPlan`].
//!
//! ## Migration from the legacy entry points
//!
//! The four monolithic `SearchFor` methods are now thin deprecated
//! shims over `execute`; first-party callers should build a plan and
//! call `execute` directly:
//!
//! | Legacy call | Replacement |
//! |---|---|
//! | `sys.resolve_pattern(p, &q)` | `sys.execute(p, &QueryPlan::pattern(q), &QueryOptions::default())` |
//! | `sys.resolve_object_prefix(p, &q)` | `sys.execute(p, &QueryPlan::object_prefix(q), &QueryOptions::default())` |
//! | `sys.search(p, &q, strategy)` | `sys.execute(p, &QueryPlan::search(q), &QueryOptions::new().strategy(strategy))` |
//! | `sys.search_conjunctive(p, &q, strategy, mode)` | `sys.execute(p, &QueryPlan::conjunctive(q), &QueryOptions::new().strategy(strategy).join_mode(mode))` |
//!
//! The legacy per-call outcome types map onto [`QueryOutcome`]:
//! `SearchOutcome::results` is [`QueryOutcome::terms`] of the
//! distinguished variable, `ConjunctiveOutcome::bindings` is
//! [`QueryOutcome::rows`], and all counters live in the shared
//! [`ExecStats`].
//!
//! ## Execution model
//!
//! Every plan bottoms out in *routed pattern resolutions*: route to
//! `Hash(routing constant)`, charge the response message, and evaluate
//! the destination peer's indexed `DB_p` — **streaming** matches off
//! the store's cursor layer
//! ([`TripleStore::match_pattern_iter`](gridvine_rdf::TripleStore::match_pattern_iter)),
//! so a destination materializes exactly the bindings it ships.
//! Closure plans drive a step-wise
//! [`ClosureWalk`] over the mapping
//! network (depth-first, the legacy traversal order, so message
//! accounting is bit-identical to the old entry points); join plans
//! feed the per-pattern binding sets through the
//! [`hash-join engine`](gridvine_rdf::join) in the planner's order.
//!
//! ```
//! use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
//! use gridvine_pgrid::PeerId;
//! use gridvine_rdf::{Term, Triple, TriplePatternQuery};
//! use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
//!
//! let mut sys = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))?;
//! sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))?;
//! sys.insert_mapping(p, "EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")])?;
//! sys.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger")))?;
//! sys.insert_triple(p, Triple::new("seq:NEN94295-05", "EMP#SystematicName",
//!     Term::literal("Aspergillus oryzae")))?;
//!
//! let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
//! let out = sys.execute(PeerId(3), &plan, &QueryOptions::new().strategy(Strategy::Recursive))?;
//! assert_eq!(out.rows.len(), 2); // both records, across schemas
//! assert_eq!(out.stats.reformulations, 1);
//! assert!(out.stats.messages > 0);
//! # Ok::<(), gridvine_core::SystemError>(())
//! ```

use super::conjunctive::JoinMode;
use super::*;
use crate::plan::{object_prefix_core, QueryPlan};
use gridvine_rdf::join::{hash_join_rows, TermInterner, VarTable, UNBOUND};
use gridvine_rdf::{Binding, ConjunctiveQuery, TriplePattern};
use gridvine_semantic::{ClosureWalk, Mapping};
use std::borrow::Cow;
use std::collections::HashMap;

/// Physical execution knobs for one [`GridVineSystem::execute`] call: a
/// builder carrying the reformulation [`Strategy`], the conjunctive
/// [`JoinMode`], a TTL override and an optional result cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    strategy: Strategy,
    join_mode: JoinMode,
    ttl: Option<usize>,
    limit: Option<usize>,
}

impl Default for QueryOptions {
    /// Iterative reformulation, bound-substitution joins, the system's
    /// configured TTL, unlimited results.
    fn default() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::Iterative,
            join_mode: JoinMode::BoundSubstitution,
            ttl: None,
            limit: None,
        }
    }
}

impl QueryOptions {
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// How reformulated queries travel the mapping network (§4).
    pub fn strategy(mut self, strategy: Strategy) -> QueryOptions {
        self.strategy = strategy;
        self
    }

    /// How conjunctive binding sets are combined (ablation A4).
    pub fn join_mode(mut self, mode: JoinMode) -> QueryOptions {
        self.join_mode = mode;
        self
    }

    /// Override the system's reformulation TTL for this query.
    pub fn ttl(mut self, ttl: usize) -> QueryOptions {
        self.ttl = Some(ttl);
        self
    }

    /// Return at most `limit` result rows (applied after the canonical
    /// sort + dedup, so the kept prefix is deterministic; dissemination
    /// and message accounting are unaffected).
    pub fn limit(mut self, limit: usize) -> QueryOptions {
        self.limit = Some(limit);
        self
    }
}

/// Execution counters shared by every plan shape — the union of what
/// the legacy `SearchOutcome` and `ConjunctiveOutcome` reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Overlay messages consumed.
    pub messages: u64,
    /// Routed pattern resolutions (original patterns, reformulations
    /// and bound-substituted instances all count; prefix sweeps count
    /// one per visited region).
    pub subqueries: usize,
    /// Mapping applications across the whole plan.
    pub reformulations: usize,
    /// Schemas reached, summed over patterns (each pattern's traversal
    /// counts its own distinct set, including its own schema).
    pub schemas_visited: usize,
    /// Resolutions that could not be routed or resolved.
    pub failures: usize,
    /// Matching bindings returned by destination peers before any join
    /// or dedup — a proxy for result bytes on the wire.
    pub bindings_shipped: usize,
}

/// What one [`GridVineSystem::execute`] call produced: solution rows
/// (projected onto the distinguished variables, deduplicated, sorted)
/// plus the shared [`ExecStats`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Solution rows. Single-pattern plans bind exactly the
    /// distinguished variable; join plans bind the query's
    /// distinguished variables.
    pub rows: Vec<Binding>,
    pub stats: ExecStats,
}

impl QueryOutcome {
    /// Distinct terms bound to `var` across the rows, sorted.
    pub fn terms(&self, var: &str) -> Vec<Term> {
        let mut out: Vec<Term> = self
            .rows
            .iter()
            .filter_map(|b| b.get(var).cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Accessions extracted from `seq:` subjects among the bound terms
    /// (for recall against workload ground truth).
    pub fn accessions(&self) -> BTreeSet<String> {
        self.rows
            .iter()
            .flat_map(|b| b.iter())
            .filter_map(|(_, t)| t.as_uri())
            .filter_map(|u| u.as_str().strip_prefix("seq:"))
            .map(|s| s.to_string())
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// One pattern's traversal of the mapping network (the per-pattern
/// inner loop of closure and join plans).
#[derive(Debug, Clone, Default)]
struct NetSweep {
    bindings: Vec<Binding>,
    subqueries: usize,
    reformulations: usize,
    schemas_visited: usize,
    failures: usize,
}

impl NetSweep {
    /// Fold this pattern-level traversal into the plan-level stats.
    fn charge(&self, stats: &mut ExecStats) {
        stats.subqueries += self.subqueries;
        stats.reformulations += self.reformulations;
        stats.schemas_visited += self.schemas_visited;
        stats.failures += self.failures;
        stats.bindings_shipped += self.bindings.len();
    }
}

/// A one-variable solution row.
fn one_var_row(var: &str, term: Term) -> Binding {
    let mut b = Binding::new();
    b.bind(var.to_string(), term);
    b
}

impl GridVineSystem {
    /// Evaluate a logical [`QueryPlan`] from `origin` under `options` —
    /// the single `SearchFor` entry point (§2.3, §3, §4) behind which
    /// pattern lookups, prefix range sweeps, reformulation closures and
    /// conjunctive joins all run.
    ///
    /// Message accounting is exactly that of the legacy entry points
    /// (which are now shims over this method): every hop, response and
    /// replica propagation is charged on the overlay counter and
    /// reported in [`ExecStats::messages`].
    pub fn execute(
        &mut self,
        origin: PeerId,
        plan: &QueryPlan,
        options: &QueryOptions,
    ) -> Result<QueryOutcome, SystemError> {
        let before = self.overlay.messages_sent();
        let ttl = options.ttl.unwrap_or(self.config.ttl);
        let mut out = match plan {
            QueryPlan::Pattern { query } => self.exec_pattern(origin, query)?,
            QueryPlan::ObjectPrefix { query } => self.exec_object_prefix(origin, query)?,
            QueryPlan::Closure { query } => {
                self.exec_closure(origin, query, options.strategy, ttl)?
            }
            QueryPlan::Join { query, order } => self.exec_join(
                origin,
                query,
                order,
                options.strategy,
                options.join_mode,
                ttl,
            )?,
        };
        out.stats.messages = self.overlay.messages_sent() - before;
        if let Some(limit) = options.limit {
            out.rows.truncate(limit);
        }
        Ok(out)
    }

    /// Route one concrete query to `Hash(routing constant)` and stream
    /// the destination's matches, projecting onto the distinguished
    /// variable: returns the sorted distinct terms plus the raw match
    /// count (what the destination shipped).
    fn resolve_routed(
        &mut self,
        origin: PeerId,
        query: &TriplePatternQuery,
    ) -> Result<(Vec<Term>, usize), SystemError> {
        let Some((_, term)) = query.pattern.routing_constant() else {
            return Err(SystemError::NotRoutable);
        };
        let key = self.key_of(term.lexical());
        let route = self.overlay.route(origin, &key, &mut self.rng)?;
        self.overlay.charge_response(origin, route.destination);
        let db = &self.local_dbs[route.destination.index()];
        let mut shipped = 0usize;
        let mut results: Vec<Term> = Vec::new();
        for b in db.match_pattern_iter(&query.pattern) {
            shipped += 1;
            if let Some(t) = b.get(&query.distinguished) {
                results.push(t.clone());
            }
        }
        results.sort();
        results.dedup();
        Ok((results, shipped))
    }

    /// Route one concrete triple pattern and return every matching
    /// binding from the destination's `DB_p`, streamed off the cursor
    /// layer; the response message is charged exactly as a `Retrieve`.
    fn resolve_pattern_once(
        &mut self,
        origin: PeerId,
        pattern: &TriplePattern,
    ) -> Result<Vec<Binding>, SystemError> {
        let Some((_, term)) = pattern.routing_constant() else {
            return Err(SystemError::NotRoutable);
        };
        let key = self.key_of(term.lexical());
        let route = self.overlay.route(origin, &key, &mut self.rng)?;
        self.overlay.charge_response(origin, route.destination);
        let db = &self.local_dbs[route.destination.index()];
        Ok(db.match_pattern_iter(pattern).collect())
    }

    /// Fetch the mappings applicable at `schema` per the strategy:
    /// iterative pulls the list back to the origin (one Retrieve +
    /// response); recursive forwards the query to the schema-key peer,
    /// which reads its local list for free and becomes the next hop's
    /// issuer. Returns `(issuing peer for the next hops, mappings)`.
    fn discover_mappings(
        &mut self,
        origin: PeerId,
        at_peer: PeerId,
        schema: &SchemaId,
        strategy: Strategy,
    ) -> Result<(PeerId, Vec<Mapping>), SystemError> {
        match strategy {
            Strategy::Iterative => Ok((origin, self.mappings_at_schema(origin, schema)?)),
            Strategy::Recursive => {
                let schema_key = self.key_of(schema.as_str());
                let route = self.overlay.route(at_peer, &schema_key, &mut self.rng)?;
                let items = self
                    .overlay
                    .store(route.destination)
                    .get(&schema_key)
                    .to_vec();
                let maps = items
                    .into_iter()
                    .filter_map(|i| match i {
                        MediationItem::Mapping { mapping, .. } => Some(mapping),
                        _ => None,
                    })
                    .collect();
                Ok((route.destination, maps))
            }
        }
    }

    /// [`QueryPlan::Pattern`]: one routed lookup.
    fn exec_pattern(
        &mut self,
        origin: PeerId,
        query: &TriplePatternQuery,
    ) -> Result<QueryOutcome, SystemError> {
        let (terms, shipped) = self.resolve_routed(origin, query)?;
        Ok(QueryOutcome {
            rows: terms
                .into_iter()
                .map(|t| one_var_row(&query.distinguished, t))
                .collect(),
            stats: ExecStats {
                subqueries: 1,
                bindings_shipped: shipped,
                ..ExecStats::default()
            },
        })
    }

    /// [`QueryPlan::ObjectPrefix`]: visit every peer region intersecting
    /// the prefix (the same regions, routes and response charges as a
    /// range `Retrieve`) and evaluate each destination's indexed `DB_p`;
    /// the object prefix runs as a sorted-key range scan there. Only
    /// routable under [`HashKind::OrderPreserving`] (§2.2).
    fn exec_object_prefix(
        &mut self,
        origin: PeerId,
        query: &TriplePatternQuery,
    ) -> Result<QueryOutcome, SystemError> {
        if self.config.hash != HashKind::OrderPreserving {
            return Err(SystemError::NotRoutable);
        }
        let Some(prefix) = object_prefix_core(&query.pattern) else {
            return Err(SystemError::NotRoutable);
        };
        let key_prefix = self.keyspace().prefix_key(prefix);
        let mut stats = ExecStats::default();
        let mut results: Vec<Term> = Vec::new();
        for region in self.overlay.range_regions(&key_prefix) {
            let probe = if region.len() >= key_prefix.len() {
                region
            } else {
                key_prefix.clone()
            };
            let route = self.overlay.route(origin, &probe, &mut self.rng)?;
            self.overlay.charge_response(origin, route.destination);
            stats.subqueries += 1;
            let db = &self.local_dbs[route.destination.index()];
            for b in db.match_pattern_iter(&query.pattern) {
                stats.bindings_shipped += 1;
                if let Some(t) = b.get(&query.distinguished) {
                    results.push(t.clone());
                }
            }
        }
        // The global sort + dedup collapses replica-group duplicates.
        results.sort();
        results.dedup();
        Ok(QueryOutcome {
            rows: results
                .into_iter()
                .map(|t| one_var_row(&query.distinguished, t))
                .collect(),
            stats,
        })
    }

    /// [`QueryPlan::Closure`]: the full `SearchFor` dissemination —
    /// answer the query in its own schema, then in every schema
    /// reachable through active mappings within the TTL, depth-first
    /// over a step-wise [`ClosureWalk`].
    fn exec_closure(
        &mut self,
        origin: PeerId,
        query: &TriplePatternQuery,
        strategy: Strategy,
        ttl: usize,
    ) -> Result<QueryOutcome, SystemError> {
        // The `SearchFor` contract requires a schema'd predicate (§2.3);
        // a schema-less pattern is an error here, not a plain lookup.
        gridvine_semantic::query_schema(query).map_err(|_| SystemError::NoQuerySchema)?;
        let net = self.sweep_pattern_network(origin, &query.pattern, strategy, ttl)?;
        let mut stats = ExecStats::default();
        net.charge(&mut stats);
        let all: BTreeSet<Term> = net
            .bindings
            .iter()
            .filter_map(|b| b.get(&query.distinguished).cloned())
            .collect();
        Ok(QueryOutcome {
            rows: all
                .into_iter()
                .map(|t| one_var_row(&query.distinguished, t))
                .collect(),
            stats,
        })
    }

    /// Resolve a pattern over the mapping network: answer it in its own
    /// schema, then in every schema reachable through active mappings
    /// (within the TTL), aggregating bindings. Patterns whose predicate
    /// is a variable (or does not name a schema) are resolved once,
    /// without reformulation — there is no schema to translate from.
    fn sweep_pattern_network(
        &mut self,
        origin: PeerId,
        pattern: &TriplePattern,
        strategy: Strategy,
        ttl: usize,
    ) -> Result<NetSweep, SystemError> {
        let mut net = NetSweep::default();
        let Ok((origin_schema, _)) = gridvine_semantic::pattern_schema(pattern) else {
            // Un-schema'd pattern: a single routed resolution.
            net.subqueries = 1;
            net.bindings = self.resolve_pattern_once(origin, pattern)?;
            return Ok(net);
        };
        // The origin pattern is borrowed (`Cow`): the traversal only
        // clones what a hop actually creates.
        let mut walk: ClosureWalk<(Cow<'_, TriplePattern>, PeerId)> =
            ClosureWalk::new(origin_schema, (Cow::Borrowed(pattern), origin));
        while let Some((schema, (pat, at_peer), depth)) = walk.next_depth_first() {
            net.subqueries += 1;
            match self.resolve_pattern_once(at_peer, &pat) {
                Ok(bindings) => net.bindings.extend(bindings),
                Err(_) => net.failures += 1,
            }
            if depth >= ttl {
                continue;
            }
            let (next_peer, mappings) =
                self.discover_mappings(origin, at_peer, &schema, strategy)?;
            for m in mappings {
                let Some(dir) = m.applicable_from(&schema) else {
                    continue;
                };
                if walk.visited(m.destination(dir)) {
                    continue;
                }
                let Some(np) = gridvine_semantic::reformulate_pattern(&pat, &m, dir) else {
                    continue;
                };
                net.reformulations += 1;
                walk.admit(
                    m.destination(dir).clone(),
                    (Cow::Owned(np), next_peer),
                    depth + 1,
                );
            }
        }
        net.schemas_visited = walk.visited_count();
        Ok(net)
    }

    /// [`QueryPlan::Join`]: disseminate every pattern like a closure and
    /// aggregate the binding sets in the hash-join engine (§2.3), under
    /// either join mode.
    fn exec_join(
        &mut self,
        origin: PeerId,
        query: &ConjunctiveQuery,
        order: &[usize],
        strategy: Strategy,
        mode: JoinMode,
        ttl: usize,
    ) -> Result<QueryOutcome, SystemError> {
        let mut stats = ExecStats::default();

        // The hash-join binding engine (gridvine_rdf::join): solution
        // rows are term-code vectors over the query's variable slots,
        // coded against a query-scoped interner (peers materialize terms
        // into the wire format, so codes must be assigned at the
        // origin). Joins and dedup compare u64s; terms are materialized
        // again only for the rows that survive.
        let vars = VarTable::from_patterns(&query.patterns);
        let mut interner = TermInterner::new();
        let mut rows: Vec<Vec<u64>> = vec![vars.empty_row()];
        match mode {
            JoinMode::Independent => {
                // One full network sweep per pattern — in written order,
                // which the sweep accounting is defined over — then
                // hash-join the binding sets.
                let mut sets: Vec<Vec<Vec<u64>>> = Vec::with_capacity(query.patterns.len());
                for pattern in &query.patterns {
                    let net = self.sweep_pattern_network(origin, pattern, strategy, ttl)?;
                    net.charge(&mut stats);
                    sets.push(
                        net.bindings
                            .iter()
                            .map(|b| interner.encode(b, &vars))
                            .collect(),
                    );
                }
                for set in sets {
                    rows = hash_join_rows(&rows, &set);
                    if rows.is_empty() {
                        break;
                    }
                }
            }
            JoinMode::BoundSubstitution => {
                // The planner's selectivity order: each partial solution
                // row is substituted into the next pattern before that
                // subquery is shipped.
                for &pi in order {
                    let pattern = &query.patterns[pi];
                    // Rows agreeing on the pattern's already-bound
                    // variables produce the same substituted instance —
                    // group by those codes so each instance is resolved
                    // once.
                    let bound_slots: Vec<(usize, &str)> = pattern
                        .variables()
                        .iter()
                        .filter_map(|v| {
                            let slot = vars.slot(v)?;
                            (rows[0][slot] != UNBOUND).then_some((slot, *v))
                        })
                        .collect();
                    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (rep row, members)
                    let mut by_key: HashMap<Vec<u64>, usize> = HashMap::new();
                    for (i, row) in rows.iter().enumerate() {
                        let key: Vec<u64> = bound_slots.iter().map(|&(s, _)| row[s]).collect();
                        match by_key.get(&key) {
                            Some(&g) => groups[g].1.push(i),
                            None => {
                                by_key.insert(key, groups.len());
                                groups.push((i, vec![i]));
                            }
                        }
                    }
                    let mut next = Vec::new();
                    for (rep, members) in groups {
                        let mut seed = Binding::new();
                        for &(slot, name) in &bound_slots {
                            seed.bind(name.to_string(), interner.term(rows[rep][slot]).clone());
                        }
                        let sub = pattern.substitute(&seed);
                        match self.sweep_pattern_network(origin, &sub, strategy, ttl) {
                            Ok(net) => {
                                net.charge(&mut stats);
                                // The substituted instance's matches bind
                                // only the pattern's remaining variables:
                                // merge each into every member row.
                                let fragments: Vec<Vec<u64>> = net
                                    .bindings
                                    .iter()
                                    .map(|b| interner.encode(b, &vars))
                                    .collect();
                                for &i in &members {
                                    let member = std::slice::from_ref(&rows[i]);
                                    next.extend(hash_join_rows(member, &fragments));
                                }
                            }
                            Err(SystemError::NotRoutable) => {
                                stats.failures += 1;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    rows = next;
                    if rows.is_empty() {
                        break;
                    }
                }
            }
        }

        // π onto the distinguished variables; dedup on codes before any
        // term is materialized. `slots` and `proj` share one filtered
        // name set so a distinguished variable absent from every
        // pattern is skipped rather than misaligning names.
        let mut slots: Vec<usize> = Vec::with_capacity(query.distinguished.len());
        let mut proj = VarTable::new();
        for d in &query.distinguished {
            if let Some(s) = vars.slot(d) {
                slots.push(s);
                proj.slot_of(d);
            }
        }
        let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
        let mut bindings: Vec<Binding> = Vec::new();
        for row in &rows {
            let projected: Vec<u64> = slots.iter().map(|&s| row[s]).collect();
            if seen.insert(projected.clone()) {
                bindings.push(interner.decode(&projected, &proj));
            }
        }
        bindings.sort_by_key(|b| b.to_string());
        Ok(QueryOutcome {
            rows: bindings,
            stats,
        })
    }
}
