//! The session scheduler seam: per-peer execution state on the
//! simulated clock.
//!
//! PR 4's [`QuerySession`](super::session::QuerySession) advanced one
//! routed subquery per pull and knew nothing about time: the WAN
//! harness re-simulated latency per chain after the fact. This module
//! puts the synchronous executor itself on the discrete-event
//! substrate of [`gridvine_netsim`]: every routed subquery becomes a
//! *unit* — a `Subquery` message issued at a send instant, answered by
//! a `Reply` scheduled on an [`EventQueue`] at `send + latency` — and
//! one session keeps up to [`QueryOptions::window`](super::exec::QueryOptions::window)
//! units in flight. Independent closure hops, prefix probes and
//! bound-join groups pipeline; dependent work (a hop's children wait
//! for its mapping discovery, a bound pattern waits for its
//! predecessor's rows) is serialized through per-unit ready times.
//!
//! ## Determinism and equivalence, by construction
//!
//! Units are *issued* in one canonical order — the `window = 1` order,
//! which is exactly PR 4's pull order — and issuing is where all
//! logical state evolves: routing (and its RNG draws), message
//! charging, row admission and dedup, closure expansion and cache
//! recording. The window never reorders issues; it only decides how
//! many replies may be outstanding before the next one must land. The
//! clock therefore models *when* each reply arrives (event delivery
//! order, first-result latency, in-flight accounting) while the row
//! multiset, the message count and the RNG stream are bit-identical
//! for every window size — the equivalence proptests pin this.
//!
//! ## Latency model
//!
//! A unit's latency is proportional to the overlay messages it charged
//! (`unit_latency`): `PROCESSING + messages × PER_MESSAGE`, with one
//! simulated millisecond per overlay message. This ties the clock to
//! the same accounting the synchronous system has always reported —
//! a warm cache replay is faster *because* it sends fewer messages —
//! and keeps the model deterministic. The WAN harness remains the
//! place for heavy-tailed regional latency distributions.
//!
//! ## The request/response protocol
//!
//! Since PR 6 a unit is a *real* request/response exchange riding the
//! system's fault process ([`GridVineConfig::fault`](super::GridVineConfig)):
//! each routed request may be lost (it times out and is retransmitted
//! with exponential backoff + jitter, up to
//! [`QueryOptions::max_retries`](super::exec::QueryOptions::max_retries)),
//! each reply carries a request id and may be duplicated (the session
//! deduplicates by id — rows, messages and accounting are never
//! double-charged) or reordered (extra delivery jitter). A unit's
//! lifecycle:
//!
//! ```text
//!           issue (logical work runs, counters charge)
//!             │
//!             ▼
//!  ┌──► in flight ───reply───► completed (delivered once; any
//!  │          │                duplicate reply with the same
//!  │       timeout             request id is dropped)
//!  │          ▼
//!  └── retransmit (backoff RETRY_TIMEOUT·2^k + jitter)
//!             │
//!      retries exhausted, or destination crashed
//!             ▼
//!          failed (recorded in ExecStats::{failures, timeouts};
//!          the closure walk terminates that branch and continues)
//! ```
//!
//! The retry loop is resolved *at issue* — the backoff delays it
//! accumulates are folded into the unit's completion instant — so the
//! canonical issue order, the routing RNG stream and the row multiset
//! stay bit-identical to the fault-free run whenever every request
//! eventually gets through; a null fault config consumes no fault
//! randomness at all and reproduces the pre-protocol scheduler
//! exactly. Failure injection ([`GridVineSystem::crash_peer`](super::GridVineSystem::crash_peer))
//! fails a request immediately — retransmitting to a peer held down
//! forever cannot help — while churn-driven downtime
//! ([`GridVineSystem::install_churn`](super::GridVineSystem::install_churn))
//! times out per attempt and succeeds on the first attempt scheduled
//! after recovery.
//!
//! ## The fault matrix
//!
//! Two adversaries attack the PDMS at different layers, and the
//! experiment suite is organised around them. The **network adversary**
//! (`GridVineConfig::fault`, RNG stream `0xFA17`; the `exp_r*` bench
//! series) perturbs message delivery; the **semantic adversary**
//! (`GridVineConfig::semantic_fault`, RNG stream `0x5EED_0BAD`; the
//! `exp_s*` series) perturbs the *content* of the mapping layer itself.
//! Both are null by default, draw from their own derived RNG streams
//! (a null config consumes no randomness and reproduces the fault-free
//! scheduler bit-for-bit), and compose with each other and with churn.
//!
//! | Series | Fault                | Injected by                        | Defended by                                  |
//! |--------|----------------------|------------------------------------|----------------------------------------------|
//! | r      | request loss         | `FaultConfig::loss`                | timeout + retransmit with backoff            |
//! | r      | reply duplication    | `FaultConfig::duplication`         | request-id dedup in the session              |
//! | r      | reply reordering     | `FaultConfig::reorder`             | event-queue delivery, order-insensitive merge|
//! | r      | churn / crash        | `install_churn`, `crash_peer`      | per-attempt retry; fail fast on crash        |
//! | r      | mass-churn storm     | `ChurnProcess::storm`              | self-organization repair after recovery      |
//! | s      | stale gossip         | `SemanticFaultConfig::stale_rate`  | Bayesian cycle analysis quarantine           |
//! | s      | corrupted mappings   | `SemanticFaultConfig::corrupt_rate`| Bayesian cycle analysis quarantine           |
//! | s      | Byzantine fabrication| `SemanticFaultConfig::byzantine_*` | quarantine; provenance tracks ground truth   |
//! | s      | crash mid-commit     | `arm_commit_crash`                 | atomic commit rollback + recovery scan       |
//!
//! Semantic defenses run as scheduler work, not magic: an
//! [`assessment_pass`](super::GridVineSystem::assessment_pass) issues
//! one routed probe per mapping cycle, charged as messages and latency
//! in [`ExecStats`](super::exec::ExecStats) (`assessment_probes`)
//! exactly like a subquery, and every status transition bumps the
//! registry epoch so closure caches self-invalidate rather than replay
//! a hop through a quarantined edge.
//!
//! ## Per-peer state
//!
//! Each peer owns a `PeerExecState`: a monotone clock (consecutive
//! sessions from the same origin resume where the last one left off),
//! the reply queue of the in-flight sessions issued from it, and its
//! **bounded LRU closure cache** (capacity
//! [`GridVineConfig::closure_cache_capacity`](super::GridVineConfig)).
//! Dropping a session cancels every reply it still has queued —
//! [`GridVineSystem::pending_events`](super::GridVineSystem::pending_events)
//! returns to zero — so abandoned queries leave no residue.
//!
//! ## Concurrent sessions: the `SessionPool` multiplexer
//!
//! Since PR 8 many sessions — typically from many origins — interleave
//! on the shared per-peer queues under one simulated clock through a
//! [`SessionPool`](super::pool::SessionPool). Each queued reply is
//! tagged with its owning [`SessionId`]; the
//! pool replenishes every live session's window round-robin (one unit
//! per session per round, in admission order — the canonical issue
//! order of each session is preserved exactly), then delivers the
//! globally earliest reply across the live origins' queues:
//!
//! ```text
//!   open ──► live ──────────────────────────────┐
//!             │  step():                        │
//!             │   1. replenish windows          │ cancel()
//!             │      (round-robin, issue order) │  · queue.retain
//!             │   2. reap idle sessions ──────► │    drops the
//!             │      (errored → Failed,         │    session's
//!             │       drained → Finished)       │    queued replies
//!             │   3. pop earliest reply         │  · clock writes
//!             │      (tie-break: time, then     │    back
//!             │       origin, then FIFO seq)    ▼
//!             └────► Delivered{session, events} ──► completed
//!                                                    │ take_outcome()
//!                                                    ▼
//!                                               QueryOutcome
//! ```
//!
//! A pool holding exactly **one** session performs the identical
//! (replenish, pop) sequence the standalone
//! [`QuerySession`](super::session::QuerySession) loop does, so its
//! rows, messages, per-unit events and RNG stream are bit-identical to
//! the single-session scheduler for every window size — the
//! `tests/load_protocol.rs` proptests pin this. Logical work still
//! evolves only at issue, on the system's single RNG stream, so
//! interleaving changes *when* replies land, never *what* a session
//! computes; with single-candidate routing tables
//! (`refs_per_level = 1`) per-session results and stats are provably
//! independent of the interleaving itself.

use super::pool::SessionId;
use super::session::ResultEvent;
use gridvine_netsim::{EventQueue, SimDuration, SimTime};
use gridvine_semantic::ClosureCache;

/// Fixed per-unit processing overhead (destination-side evaluation).
pub(crate) const PROCESSING: SimDuration = SimDuration::from_micros(250);

/// Simulated network cost of one overlay message.
pub(crate) const PER_MESSAGE: SimDuration = SimDuration::from_millis(1);

/// Base reply timeout of the retry protocol: attempt `k` waits
/// `RETRY_TIMEOUT << k` (plus jitter up to half that) before
/// retransmitting.
pub(crate) const RETRY_TIMEOUT: SimDuration = SimDuration::from_millis(5);

/// Simulated latency of one unit that charged `messages` overlay
/// messages.
pub(crate) fn unit_latency(messages: u64) -> SimDuration {
    SimDuration(PROCESSING.0 + messages.saturating_mul(PER_MESSAGE.0))
}

/// The reply of one in-flight unit, scheduled at its completion
/// instant: the [`ResultEvent`]s the unit produced, delivered when the
/// simulated clock reaches it.
#[derive(Debug)]
pub(crate) struct QueuedReply {
    /// The session that issued the unit. Queues are shared by every
    /// session issuing from the same origin; the pool routes each
    /// delivered reply to its owner, and cancelling a session retains
    /// only the other sessions' replies.
    pub(crate) session: SessionId,
    /// The issuing request's id. A faulty run may schedule the same
    /// reply twice (reply duplication); the session delivers each id
    /// once and drops later copies.
    pub(crate) request_id: u64,
    pub(crate) events: Vec<ResultEvent>,
}

/// One peer's persistent execution state (see the module docs).
#[derive(Debug)]
pub(crate) struct PeerExecState {
    /// This peer's simulated clock: the completion time of the last
    /// unit any session from this origin delivered. Monotone.
    pub(crate) clock: SimTime,
    /// Replies of the issued units of every in-flight session from
    /// this origin (empty between sessions; a dropped or cancelled
    /// session's replies are filtered out, other sessions' survive).
    pub(crate) queue: EventQueue<QueuedReply>,
    /// This peer's bounded reformulation-closure cache. The iterative
    /// strategy consults the *origin* peer's cache; the recursive
    /// strategy consults (and fills) the *delegate* peer's — the
    /// intermediate peer that served the first mapping discovery.
    pub(crate) cache: ClosureCache,
}

impl PeerExecState {
    pub(crate) fn new(cache_capacity: usize) -> PeerExecState {
        PeerExecState {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            cache: ClosureCache::bounded(cache_capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_messages() {
        assert_eq!(unit_latency(0), PROCESSING);
        assert!(unit_latency(3) > unit_latency(1));
        assert_eq!(unit_latency(2).0, PROCESSING.0 + 2 * PER_MESSAGE.0);
    }
}
