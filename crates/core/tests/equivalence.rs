//! Equivalence: the legacy `SearchFor` entry points are thin shims over
//! [`GridVineSystem::execute`], so calling either surface must produce
//! **identical results and identical message counts** — across
//! strategies and join modes, on randomized federations.
//!
//! Each property builds two identically-seeded systems, drives one
//! through a legacy shim and the other through `execute` with the
//! corresponding plan, and asserts every observable agrees. Repeated
//! calls then verify the two systems' RNG/overlay state evolved in
//! lock-step (a divergence anywhere would cascade into the second
//! call's message counts).

#![allow(deprecated)]

use gridvine_core::{GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryPlan, Strategy};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{
    ConjunctiveQuery, PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery,
};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
use proptest::prelude::*;

const PEERS: usize = 32;
const VALUES: [&str; 5] = [
    "Aspergillus niger",
    "Aspergillus oryzae",
    "Escherichia coli",
    "Penicillium notatum",
    "Saccharomyces cerevisiae",
];

/// A randomized federation: `schemas` schemas with two attributes each,
/// a (partially present) chain of equivalence mappings, and `facts`
/// organism + length triples scattered over entities and schemas.
fn build(seed: u64, schemas: usize, links: &[bool], facts: &[(u8, u8, u8)]) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: PEERS,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..schemas {
        sys.insert_schema(
            p0,
            Schema::new(
                format!("S{i}").as_str(),
                [format!("organism{i}"), format!("length{i}")],
            ),
        )
        .unwrap();
    }
    for i in 0..schemas - 1 {
        if links.get(i).copied().unwrap_or(true) {
            sys.insert_mapping(
                p0,
                format!("S{i}").as_str(),
                format!("S{}", i + 1).as_str(),
                MappingKind::Equivalence,
                Provenance::Manual,
                vec![
                    Correspondence::new(format!("organism{i}"), format!("organism{}", i + 1)),
                    Correspondence::new(format!("length{i}"), format!("length{}", i + 1)),
                ],
            )
            .unwrap();
        }
    }
    for &(e, s, v) in facts {
        let s = (s as usize) % schemas;
        let subject = format!("seq:E{:02}", e % 12);
        let value = VALUES[v as usize % VALUES.len()];
        sys.insert_triple(
            p0,
            Triple::new(
                subject.as_str(),
                format!("S{s}#organism{s}").as_str(),
                Term::literal(value),
            ),
        )
        .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                subject.as_str(),
                format!("S{s}#length{s}").as_str(),
                Term::literal(format!("{}", 100 + (v as usize % 7) * 10)),
            ),
        )
        .unwrap();
    }
    sys
}

fn organism_query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#organism0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap()
}

fn organism_length_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec!["x".into(), "len".into()],
        vec![
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S0#organism0")),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S0#length0")),
                PatternTerm::var("len"),
            ),
        ],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `search` ≡ `execute(QueryPlan::search)`: results, accessions and
    /// every counter, for both strategies, twice in a row.
    #[test]
    fn search_shim_equals_execute(
        seed in 0u64..1000,
        schemas in 2usize..4,
        links in proptest::collection::vec(any::<bool>(), 0..3),
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..24),
        origin in 0usize..PEERS,
        recursive in any::<bool>(),
    ) {
        let strategy = if recursive { Strategy::Recursive } else { Strategy::Iterative };
        let q = organism_query();
        let mut legacy = build(seed, schemas, &links, &facts);
        let mut modern = build(seed, schemas, &links, &facts);
        for round in 0..2 {
            let at = PeerId::from_index((origin + 7 * round) % PEERS);
            let a = legacy.search(at, &q, strategy).unwrap();
            let b = modern
                .execute(at, &QueryPlan::search(q.clone()),
                         &QueryOptions::new().strategy(strategy))
                .unwrap();
            prop_assert_eq!(&a.results, &b.terms("x"), "round {} results", round);
            prop_assert_eq!(&a.accessions, &b.accessions(), "round {} accessions", round);
            prop_assert_eq!(a.messages, b.stats.messages, "round {} messages", round);
            prop_assert_eq!(a.reformulations, b.stats.reformulations);
            prop_assert_eq!(a.schemas_visited, b.stats.schemas_visited);
            prop_assert_eq!(a.failures, b.stats.failures);
        }
    }

    /// `search_conjunctive` ≡ `execute(QueryPlan::conjunctive)`:
    /// bindings and every counter, across strategies and join modes.
    #[test]
    fn conjunctive_shim_equals_execute(
        seed in 0u64..1000,
        schemas in 2usize..4,
        links in proptest::collection::vec(any::<bool>(), 0..3),
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..20),
        origin in 0usize..PEERS,
        recursive in any::<bool>(),
        bound in any::<bool>(),
    ) {
        let strategy = if recursive { Strategy::Recursive } else { Strategy::Iterative };
        let mode = if bound { JoinMode::BoundSubstitution } else { JoinMode::Independent };
        let q = organism_length_query();
        let mut legacy = build(seed, schemas, &links, &facts);
        let mut modern = build(seed, schemas, &links, &facts);
        for round in 0..2 {
            let at = PeerId::from_index((origin + 11 * round) % PEERS);
            let a = legacy.search_conjunctive(at, &q, strategy, mode).unwrap();
            let b = modern
                .execute(at, &QueryPlan::conjunctive(q.clone()),
                         &QueryOptions::new().strategy(strategy).join_mode(mode))
                .unwrap();
            prop_assert_eq!(&a.bindings, &b.rows, "round {} bindings", round);
            prop_assert_eq!(a.messages, b.stats.messages, "round {} messages", round);
            prop_assert_eq!(a.subqueries, b.stats.subqueries);
            prop_assert_eq!(a.reformulations, b.stats.reformulations);
            prop_assert_eq!(a.schemas_visited, b.stats.schemas_visited);
            prop_assert_eq!(a.failures, b.stats.failures);
            prop_assert_eq!(a.bindings_shipped, b.stats.bindings_shipped);
        }
    }

    /// `resolve_pattern` ≡ `execute(QueryPlan::pattern)` and
    /// `resolve_object_prefix` ≡ `execute(QueryPlan::object_prefix)`.
    #[test]
    fn resolve_shims_equal_execute(
        seed in 0u64..1000,
        schemas in 2usize..4,
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..20),
        origin in 0usize..PEERS,
    ) {
        let q = organism_query();
        let mut legacy = build(seed, schemas, &[], &facts);
        let mut modern = build(seed, schemas, &[], &facts);
        let at = PeerId::from_index(origin);
        let (terms_a, msgs_a) = legacy.resolve_pattern(at, &q).unwrap();
        let b = modern
            .execute(at, &QueryPlan::pattern(q.clone()), &QueryOptions::default())
            .unwrap();
        prop_assert_eq!(terms_a, b.terms("x"));
        prop_assert_eq!(msgs_a, b.stats.messages);
        prop_assert_eq!(b.stats.subqueries, 1);

        let prefix_q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::constant(Term::literal("Aspergillus%")),
            ),
        )
        .unwrap();
        let (terms_a, msgs_a) = legacy.resolve_object_prefix(at, &prefix_q).unwrap();
        let b = modern
            .execute(at, &QueryPlan::object_prefix(prefix_q.clone()), &QueryOptions::default())
            .unwrap();
        prop_assert_eq!(terms_a, b.terms("x"));
        prop_assert_eq!(msgs_a, b.stats.messages);
    }
}

/// The executor honours its options: a TTL override stops the closure,
/// and a result limit truncates rows without touching dissemination.
#[test]
fn options_ttl_and_limit() {
    let facts: Vec<(u8, u8, u8)> = (0..12).map(|i| (i, i % 3, i % 5)).collect();
    let q = organism_query();

    let mut sys = build(42, 3, &[], &facts);
    let full = sys
        .execute(
            PeerId(3),
            &QueryPlan::search(q.clone()),
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(full.stats.reformulations > 0, "chain must reformulate");

    let mut sys = build(42, 3, &[], &facts);
    let capped = sys
        .execute(
            PeerId(3),
            &QueryPlan::search(q.clone()),
            &QueryOptions::new().ttl(0),
        )
        .unwrap();
    assert_eq!(capped.stats.reformulations, 0);
    assert_eq!(capped.stats.schemas_visited, 1);

    let mut sys = build(42, 3, &[], &facts);
    let limited = sys
        .execute(
            PeerId(3),
            &QueryPlan::search(q.clone()),
            &QueryOptions::new().limit(1),
        )
        .unwrap();
    assert!(limited.rows.len() <= 1);
    assert_eq!(
        limited.stats.messages, full.stats.messages,
        "a result cap must not change dissemination"
    );
    assert_eq!(limited.rows.first(), full.rows.first());
}

/// `QueryPlan::single` routes each query shape to the executor path the
/// legacy API required the caller to pick by hand.
#[test]
fn auto_planned_queries_execute() {
    let facts: Vec<(u8, u8, u8)> = (0..10).map(|i| (i, 0, i % 5)).collect();
    let mut sys = build(7, 2, &[], &facts);

    // Schema'd predicate → closure.
    let out = sys
        .execute(
            PeerId(1),
            &QueryPlan::single(organism_query()),
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(out.stats.schemas_visited >= 1);

    // Prefix-only query → range sweep.
    let prefix_q = TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::var("p"),
            PatternTerm::constant(Term::literal("Aspergillus%")),
        ),
    )
    .unwrap();
    let swept = sys
        .execute(
            PeerId(1),
            &QueryPlan::single(prefix_q),
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(!swept.rows.is_empty());
    assert!(swept.stats.subqueries >= 1);
}
