//! Equivalence and early-termination properties of the pull-based
//! query surface:
//!
//! * [`GridVineSystem::execute`] ≡ a manually drained
//!   [`QuerySession`] — identical rows, identical message counts and
//!   identical counters, across plan shapes, strategies and join
//!   modes, on randomized federations (and twice in a row, so the two
//!   systems' RNG/overlay state provably evolves in lock-step);
//! * the event protocol is self-consistent: `Stats` deltas sum to the
//!   outcome's totals, `Rows` batches union to the outcome's rows,
//!   `SchemaHop`s count the schemas visited;
//! * the epoch-keyed reformulation-closure cache is correct: mapping
//!   inserts/deprecations bump the epoch and invalidate it (post-
//!   mutation queries see exactly the new mapping network, in lock-step
//!   with an identically-seeded twin), and warm replays undercut cold
//!   walks on messages without changing results;
//! * early termination is genuine: dropping a session stops issuing
//!   messages, and a `limit(k)` run sends strictly fewer messages than
//!   the unlimited run for k ≪ result count.

use gridvine_core::{
    ExecStats, GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryPlan, ResultEvent,
    Strategy,
};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{
    Binding, ConjunctiveQuery, PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery,
};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
use proptest::prelude::*;

const PEERS: usize = 32;
const VALUES: [&str; 5] = [
    "Aspergillus niger",
    "Aspergillus oryzae",
    "Escherichia coli",
    "Penicillium notatum",
    "Saccharomyces cerevisiae",
];

/// A randomized federation: `schemas` schemas with two attributes each,
/// a (partially present) chain of equivalence mappings, and `facts`
/// organism + length triples scattered over entities and schemas.
fn build(seed: u64, schemas: usize, links: &[bool], facts: &[(u8, u8, u8)]) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: PEERS,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..schemas {
        sys.insert_schema(
            p0,
            Schema::new(
                format!("S{i}").as_str(),
                [format!("organism{i}"), format!("length{i}")],
            ),
        )
        .unwrap();
    }
    for i in 0..schemas - 1 {
        if links.get(i).copied().unwrap_or(true) {
            sys.insert_mapping(
                p0,
                format!("S{i}").as_str(),
                format!("S{}", i + 1).as_str(),
                MappingKind::Equivalence,
                Provenance::Manual,
                vec![
                    Correspondence::new(format!("organism{i}"), format!("organism{}", i + 1)),
                    Correspondence::new(format!("length{i}"), format!("length{}", i + 1)),
                ],
            )
            .unwrap();
        }
    }
    for &(e, s, v) in facts {
        let s = (s as usize) % schemas;
        let subject = format!("seq:E{:02}", e % 12);
        let value = VALUES[v as usize % VALUES.len()];
        sys.insert_triple(
            p0,
            Triple::new(
                subject.as_str(),
                format!("S{s}#organism{s}").as_str(),
                Term::literal(value),
            ),
        )
        .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                subject.as_str(),
                format!("S{s}#length{s}").as_str(),
                Term::literal(format!("{}", 100 + (v as usize % 7) * 10)),
            ),
        )
        .unwrap();
    }
    sys
}

fn organism_query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#organism0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap()
}

fn organism_length_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec!["x".into(), "len".into()],
        vec![
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S0#organism0")),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S0#length0")),
                PatternTerm::var("len"),
            ),
        ],
    )
    .unwrap()
}

/// What draining a session observed, event by event.
struct Drained {
    rows_from_events: Vec<Binding>,
    stats_from_deltas: ExecStats,
    schema_hops: usize,
    outcome: gridvine_core::QueryOutcome,
}

/// Drain a session manually, accumulating every event kind.
fn drain(
    sys: &mut GridVineSystem,
    origin: PeerId,
    plan: &QueryPlan,
    options: &QueryOptions,
) -> Result<Drained, gridvine_core::SystemError> {
    let mut session = sys.open(origin, plan, options)?;
    let mut rows_from_events = Vec::new();
    let mut stats_from_deltas = ExecStats::default();
    let mut schema_hops = 0usize;
    while let Some(ev) = session.next_event()? {
        match ev {
            ResultEvent::Rows(batch) => rows_from_events.extend(batch),
            ResultEvent::SchemaHop { .. } => schema_hops += 1,
            ResultEvent::Stats(d) => {
                stats_from_deltas.messages += d.messages;
                stats_from_deltas.subqueries += d.subqueries;
                stats_from_deltas.reformulations += d.reformulations;
                stats_from_deltas.schemas_visited += d.schemas_visited;
                stats_from_deltas.failures += d.failures;
                stats_from_deltas.bindings_shipped += d.bindings_shipped;
                stats_from_deltas.mapping_fetches += d.mapping_fetches;
                stats_from_deltas.max_in_flight += d.max_in_flight;
                stats_from_deltas.cache_hits += d.cache_hits;
                stats_from_deltas.cache_misses += d.cache_misses;
                stats_from_deltas.cache_evictions += d.cache_evictions;
                stats_from_deltas.requests += d.requests;
                stats_from_deltas.sends += d.sends;
                stats_from_deltas.timeouts += d.timeouts;
                stats_from_deltas.retransmits += d.retransmits;
                stats_from_deltas.duplicates_dropped += d.duplicates_dropped;
            }
        }
    }
    assert!(session.is_complete());
    Ok(Drained {
        rows_from_events,
        stats_from_deltas,
        schema_hops,
        outcome: session.into_outcome(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `execute(QueryPlan::search)` ≡ a drained session: rows,
    /// accessions and every counter, for both strategies, twice in a
    /// row — and the event stream is self-consistent (deltas sum to
    /// totals, batches union to rows, hops count schemas).
    #[test]
    fn search_execute_equals_drained_session(
        seed in 0u64..1000,
        schemas in 2usize..4,
        links in proptest::collection::vec(any::<bool>(), 0..3),
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..24),
        origin in 0usize..PEERS,
        recursive in any::<bool>(),
    ) {
        let strategy = if recursive { Strategy::Recursive } else { Strategy::Iterative };
        let options = QueryOptions::new().strategy(strategy);
        let plan = QueryPlan::search(organism_query());
        let mut blocking = build(seed, schemas, &links, &facts);
        let mut pulled = build(seed, schemas, &links, &facts);
        for round in 0..2 {
            let at = PeerId::from_index((origin + 7 * round) % PEERS);
            let a = blocking.execute(at, &plan, &options).unwrap();
            let d = drain(&mut pulled, at, &plan, &options).unwrap();
            prop_assert_eq!(&a.rows, &d.outcome.rows, "round {} rows", round);
            prop_assert_eq!(a.accessions(), d.outcome.accessions(), "round {}", round);
            prop_assert_eq!(a.stats, d.outcome.stats, "round {} stats", round);
            // Event-protocol invariants.
            prop_assert_eq!(d.stats_from_deltas, d.outcome.stats, "delta sum");
            let mut from_events = d.rows_from_events.clone();
            from_events.sort_by(|x, y| x.get("x").cmp(&y.get("x")));
            prop_assert_eq!(&from_events, &d.outcome.rows, "batches union to rows");
            prop_assert_eq!(d.schema_hops, d.outcome.stats.schemas_visited, "hops");
        }
    }

    /// `execute(QueryPlan::conjunctive)` ≡ a drained session: rows and
    /// every counter, across strategies and join modes.
    #[test]
    fn conjunctive_execute_equals_drained_session(
        seed in 0u64..1000,
        schemas in 2usize..4,
        links in proptest::collection::vec(any::<bool>(), 0..3),
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..20),
        origin in 0usize..PEERS,
        recursive in any::<bool>(),
        bound in any::<bool>(),
    ) {
        let strategy = if recursive { Strategy::Recursive } else { Strategy::Iterative };
        let mode = if bound { JoinMode::BoundSubstitution } else { JoinMode::Independent };
        let options = QueryOptions::new().strategy(strategy).join_mode(mode);
        let plan = QueryPlan::conjunctive(organism_length_query());
        let mut blocking = build(seed, schemas, &links, &facts);
        let mut pulled = build(seed, schemas, &links, &facts);
        for round in 0..2 {
            let at = PeerId::from_index((origin + 11 * round) % PEERS);
            let a = blocking.execute(at, &plan, &options).unwrap();
            let d = drain(&mut pulled, at, &plan, &options).unwrap();
            prop_assert_eq!(&a.rows, &d.outcome.rows, "round {} rows", round);
            prop_assert_eq!(a.stats, d.outcome.stats, "round {} stats", round);
            prop_assert_eq!(d.stats_from_deltas, d.outcome.stats, "delta sum");
            let mut from_events = d.rows_from_events.clone();
            from_events.sort_by_key(|b| b.to_string());
            prop_assert_eq!(&from_events, &d.outcome.rows, "batches union to rows");
        }
    }

    /// The store's sort-merge join is interchangeable with the hash
    /// join the executor uses: identical binding multisets on every
    /// populated peer database — and the executor's bound-substitution
    /// conjunctive runs (which probe the same shared-slot join
    /// machinery) keep identical rows and message counts across
    /// identically-seeded twins.
    #[test]
    fn merge_join_matches_hash_join_and_executor_messages(
        seed in 0u64..1000,
        schemas in 2usize..4,
        links in proptest::collection::vec(any::<bool>(), 0..3),
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..24),
        origin in 0usize..PEERS,
    ) {
        let left = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#organism0")),
            PatternTerm::var("a"),
        );
        let right = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#length0")),
            PatternTerm::var("b"),
        );
        fn key(b: &Binding) -> String {
            b.to_string()
        }
        // Store level: merge ≡ hash on every populated peer database.
        let sys = build(seed, schemas, &links, &facts);
        for p in 0..PEERS {
            let db = sys.peer_db(PeerId::from_index(p));
            if db.is_empty() {
                continue;
            }
            let mut merged = db.merge_join(&left, &right);
            let mut hashed = db.join(&left, &right);
            merged.sort_by_key(key);
            hashed.sort_by_key(key);
            prop_assert_eq!(merged, hashed, "peer {}", p);
        }
        // Executor level: rows AND message counts stay in lock-step
        // between a blocking execute and a drained session on
        // identically-seeded twins — the join layer feeds both, so any
        // order or count drift from the build-free probe path would
        // surface here.
        let options = QueryOptions::new().join_mode(JoinMode::BoundSubstitution);
        let plan = QueryPlan::conjunctive(organism_length_query());
        let at = PeerId::from_index(origin);
        let mut blocking = build(seed, schemas, &links, &facts);
        let mut pulled = build(seed, schemas, &links, &facts);
        let a = blocking.execute(at, &plan, &options).unwrap();
        let d = drain(&mut pulled, at, &plan, &options).unwrap();
        prop_assert_eq!(&a.rows, &d.outcome.rows, "executor rows");
        prop_assert_eq!(a.stats.messages, d.outcome.stats.messages, "executor messages");
        prop_assert_eq!(a.stats, d.outcome.stats, "executor stats");
    }

    /// `execute(QueryPlan::pattern)` and `execute(QueryPlan::object_prefix)`
    /// ≡ their drained sessions.
    #[test]
    fn resolve_execute_equals_drained_session(
        seed in 0u64..1000,
        schemas in 2usize..4,
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..20),
        origin in 0usize..PEERS,
    ) {
        let at = PeerId::from_index(origin);
        for plan in [
            QueryPlan::pattern(organism_query()),
            QueryPlan::object_prefix(
                TriplePatternQuery::new(
                    "x",
                    TriplePattern::new(
                        PatternTerm::var("x"),
                        PatternTerm::var("p"),
                        PatternTerm::constant(Term::literal("Aspergillus%")),
                    ),
                )
                .unwrap(),
            ),
        ] {
            let mut blocking = build(seed, schemas, &[], &facts);
            let mut pulled = build(seed, schemas, &[], &facts);
            let a = blocking.execute(at, &plan, &QueryOptions::default()).unwrap();
            let d = drain(&mut pulled, at, &plan, &QueryOptions::default()).unwrap();
            prop_assert_eq!(&a.rows, &d.outcome.rows, "{} rows", plan);
            prop_assert_eq!(a.stats, d.outcome.stats, "{} stats", plan);
            prop_assert_eq!(d.stats_from_deltas, d.outcome.stats, "{} delta sum", plan);
        }
    }

    /// Cache invalidation: a mapping insert or deprecation bumps the
    /// epoch, empties the cache, and the next query sees exactly the
    /// new mapping network — in lock-step (results AND message counts)
    /// with an identically-seeded twin driven through the identical
    /// warm-then-mutate sequence, and with semantically correct results
    /// (the deprecated edge unreachable / the inserted edge reachable).
    #[test]
    fn mapping_mutations_invalidate_the_closure_cache(
        seed in 0u64..1000,
        facts in proptest::collection::vec((0u8..12, 0u8..3, 0u8..2), 4..20),
        origin in 0usize..PEERS,
        deprecate in any::<bool>(),
    ) {
        // Full 3-chain; every fact value is an Aspergillus organism, so
        // the closure's reach is observable in the result rows.
        let schemas = 3usize;
        let plan = QueryPlan::search(organism_query());
        let options = QueryOptions::default(); // iterative → cached
        let at = PeerId::from_index(origin);
        let mut sys = build(seed, schemas, &[], &facts);
        let mut twin = build(seed, schemas, &[], &facts);

        let warm_up = sys.execute(at, &plan, &options).unwrap();
        prop_assert!(sys.cached_closures() > 0, "closure recorded");
        let epoch_before = sys.registry().epoch();
        twin.execute(at, &plan, &options).unwrap();

        // Mutate the mapping network (both systems identically).
        if deprecate {
            let id = sys.registry().mappings().next().map(|m| m.id).unwrap();
            sys.deprecate_mapping(PeerId(0), id).unwrap();
            twin.deprecate_mapping(PeerId(0), id).unwrap();
        } else {
            for s in [&mut sys, &mut twin] {
                s.insert_mapping(
                    PeerId(0),
                    "S0",
                    "S2",
                    MappingKind::Equivalence,
                    Provenance::Automatic,
                    vec![Correspondence::new("organism0", "organism2")],
                )
                .unwrap();
            }
        }
        prop_assert!(sys.registry().epoch() > epoch_before, "epoch bumped");
        prop_assert_eq!(sys.cached_closures(), 0, "stale cache counts as empty");

        let after = sys.execute(at, &plan, &options).unwrap();
        let after_twin = twin.execute(at, &plan, &options).unwrap();
        prop_assert_eq!(&after.rows, &after_twin.rows, "post-mutation rows in lock-step");
        prop_assert_eq!(after.stats, after_twin.stats, "post-mutation stats in lock-step");
        if deprecate {
            // S0—S1 cut: the walk must stop at S0 (no stale replay of
            // the old 3-schema closure).
            prop_assert_eq!(after.stats.schemas_visited, 1);
            prop_assert_eq!(after.stats.reformulations, 0);
            prop_assert!(after.rows.len() <= warm_up.rows.len());
        } else {
            // A fresh S0→S2 shortcut exists; the closure still reaches
            // all three schemas (now partly over the new edge), so no
            // results may be lost to a stale replay.
            prop_assert_eq!(after.stats.schemas_visited, 3);
            prop_assert!(after.rows.len() >= warm_up.rows.len());
        }
        // The fresh walk re-populated the cache at the new epoch.
        prop_assert!(sys.cached_closures() > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The two closure implementations stay in lock-step: a single-
    /// pattern independent join runs its sweep through the bulk
    /// `sweep_pattern_network`, a closure plan through the session's
    /// incremental hop state — same pattern, so every counter and the
    /// message count must agree (pinning the duplicated cold-walk +
    /// cache record/replay logic together), cold and warm, across
    /// strategies.
    #[test]
    fn bulk_sweep_accounting_matches_incremental_closure(
        seed in 0u64..1000,
        schemas in 2usize..4,
        links in proptest::collection::vec(any::<bool>(), 0..3),
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..20),
        origin in 0usize..PEERS,
        recursive in any::<bool>(),
    ) {
        let strategy = if recursive { Strategy::Recursive } else { Strategy::Iterative };
        let options = QueryOptions::new().strategy(strategy);
        let q = organism_query();
        let closure_plan = QueryPlan::search(q.clone());
        let join_plan = QueryPlan::conjunctive(
            ConjunctiveQuery::new(vec!["x".into()], vec![q.pattern.clone()]).unwrap(),
        );
        let join_options = options.join_mode(JoinMode::Independent);
        let mut via_closure = build(seed, schemas, &links, &facts);
        let mut via_join = build(seed, schemas, &links, &facts);
        for round in 0..2 {
            // Round 0 is cold on both sides, round 1 replays the cache
            // (iterative) on both sides.
            let at = PeerId::from_index((origin + 5 * round) % PEERS);
            let c = via_closure.execute(at, &closure_plan, &options).unwrap();
            let j = via_join.execute(at, &join_plan, &join_options).unwrap();
            prop_assert_eq!(c.stats, j.stats, "round {} accounting", round);
            prop_assert_eq!(c.terms("x"), j.terms("x"), "round {} terms", round);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The scheduler window never changes what a query computes: for
    /// `w ∈ {2, 4, 8}`, an overlapped session produces the same row
    /// multiset AND the same total message count (and every other
    /// counter except the in-flight high-water mark) as the serial
    /// `w = 1` run — across plan shapes, strategies and join modes,
    /// cold and warm.
    #[test]
    fn overlapped_windows_match_serial_execution(
        seed in 0u64..1000,
        schemas in 2usize..4,
        links in proptest::collection::vec(any::<bool>(), 0..3),
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 1..20),
        origin in 0usize..PEERS,
        recursive in any::<bool>(),
        bound in any::<bool>(),
        limit in 0usize..4,
    ) {
        let strategy = if recursive { Strategy::Recursive } else { Strategy::Iterative };
        let mode = if bound { JoinMode::BoundSubstitution } else { JoinMode::Independent };
        let mut base = QueryOptions::new().strategy(strategy).join_mode(mode);
        // 0 means unlimited; otherwise a genuine early-termination cap.
        if limit > 0 {
            base = base.limit(limit);
        }
        let at = PeerId::from_index(origin);
        for plan in [
            QueryPlan::search(organism_query()),
            QueryPlan::conjunctive(organism_length_query()),
        ] {
            let mut serial_sys = build(seed, schemas, &links, &facts);
            let mut serial = Vec::new();
            for _ in 0..2 {
                serial.push(serial_sys.execute(at, &plan, &base).unwrap());
            }
            for w in [2usize, 4, 8] {
                let mut sys = build(seed, schemas, &links, &facts);
                let options = base.window(w);
                // Two rounds: round 0 cold, round 1 warm (iterative).
                for (round, expect) in serial.iter().enumerate() {
                    let d = drain(&mut sys, at, &plan, &options).unwrap();
                    prop_assert_eq!(
                        &d.outcome.rows, &expect.rows,
                        "w={} round {} rows", w, round
                    );
                    prop_assert_eq!(
                        d.outcome.stats.messages, expect.stats.messages,
                        "w={} round {} messages", w, round
                    );
                    prop_assert_eq!(d.outcome.stats.subqueries, expect.stats.subqueries);
                    prop_assert_eq!(d.outcome.stats.reformulations, expect.stats.reformulations);
                    prop_assert_eq!(d.outcome.stats.schemas_visited, expect.stats.schemas_visited);
                    prop_assert_eq!(d.outcome.stats.failures, expect.stats.failures);
                    prop_assert_eq!(d.outcome.stats.bindings_shipped, expect.stats.bindings_shipped);
                    prop_assert_eq!(d.outcome.stats.mapping_fetches, expect.stats.mapping_fetches);
                    prop_assert_eq!(d.outcome.stats.cache_hits, expect.stats.cache_hits);
                    prop_assert_eq!(d.outcome.stats.cache_misses, expect.stats.cache_misses);
                    prop_assert_eq!(d.outcome.stats.cache_evictions, expect.stats.cache_evictions);
                    prop_assert!(
                        d.outcome.stats.max_in_flight <= w,
                        "w={}: hwm {} within window", w, d.outcome.stats.max_in_flight
                    );
                    // Event-protocol invariants hold under overlap too.
                    prop_assert_eq!(d.stats_from_deltas, d.outcome.stats, "w={} delta sum", w);
                    prop_assert!(sys.pending_events() == 0, "drained session leaves no events");
                }
            }
        }
    }

    /// Dropping a session mid-flight cancels every scheduled reply:
    /// `pending_events()` returns to zero, no further messages are
    /// issued, and the system remains fully usable.
    #[test]
    fn dropping_mid_flight_leaves_no_pending_events(
        seed in 0u64..1000,
        facts in proptest::collection::vec((0u8..12, 0u8..4, 0u8..5), 4..20),
        origin in 0usize..PEERS,
        window in 1usize..9,
        pulls in 1usize..4,
    ) {
        let plan = QueryPlan::search(organism_query());
        let options = QueryOptions::new().window(window);
        let mut sys = build(seed, 4, &[], &facts);
        let at = PeerId::from_index(origin);
        let observed = {
            let mut session = sys.open(at, &plan, &options).unwrap();
            for _ in 0..pulls {
                if session.next_event().unwrap().is_none() {
                    break;
                }
            }
            session.stats().messages
            // Dropped here, possibly with replies still queued.
        };
        prop_assert_eq!(sys.pending_events(), 0, "drop cancelled all queued events");
        let after_drop = sys.messages_sent();
        let out = sys.execute(at, &plan, &QueryOptions::default()).unwrap();
        prop_assert!(sys.messages_sent() >= after_drop + out.stats.messages);
        prop_assert_eq!(sys.pending_events(), 0);
        let _ = observed;
    }
}

/// Warm cache replays undercut cold walks on messages — same rows, no
/// mapping-list retrieves — for the iterative strategy (origin-peer
/// cache) *and* the recursive strategy (delegate-peer cache).
#[test]
fn warm_closure_replay_skips_mapping_fetch_messages() {
    let facts: Vec<(u8, u8, u8)> = (0..12).map(|i| (i, i % 4, 0)).collect();
    let q = organism_query();
    let plan = QueryPlan::search(q);
    let options = QueryOptions::default();
    let mut sys = build(42, 4, &[], &facts);
    assert_eq!(sys.cached_closures(), 0);
    let cold = sys.execute(PeerId(3), &plan, &options).unwrap();
    assert_eq!(sys.cached_closures(), 1);
    assert_eq!(cold.stats.cache_misses, 1);
    assert_eq!(cold.stats.cache_hits, 0);
    let warm = sys.execute(PeerId(3), &plan, &options).unwrap();
    assert_eq!(cold.rows, warm.rows, "replay must not change results");
    assert_eq!(cold.stats.schemas_visited, warm.stats.schemas_visited);
    assert_eq!(cold.stats.subqueries, warm.stats.subqueries);
    assert_eq!(warm.stats.cache_hits, 1);
    assert!(cold.stats.mapping_fetches > 0);
    assert_eq!(
        warm.stats.mapping_fetches, 0,
        "replay fetches no mapping lists"
    );
    assert!(
        warm.stats.messages < cold.stats.messages,
        "warm {} must undercut cold {} (4 mapping fetches skipped)",
        warm.stats.messages,
        cold.stats.messages
    );
    // The iterative cache is per-peer: a different origin is cold again.
    let elsewhere = sys.execute(PeerId(9), &plan, &options).unwrap();
    assert_eq!(elsewhere.stats.cache_hits, 0);
    assert_eq!(elsewhere.stats.cache_misses, 1);
    assert_eq!(elsewhere.terms("x"), warm.terms("x"));
    assert_eq!(sys.cached_closures(), 2, "each origin warms its own cache");

    // The recursive strategy caches at the intermediate (delegate)
    // peer that serves the first mapping discovery: the first walk
    // records there, the second replays its tail — identical rows,
    // strictly fewer mapping-list retrieves.
    let rec_opts = QueryOptions::new().strategy(Strategy::Recursive);
    let rec_cold = sys.execute(PeerId(3), &plan, &rec_opts).unwrap();
    assert_eq!(rec_cold.terms("x"), warm.terms("x"));
    assert_eq!(sys.cached_closures(), 3, "delegate peer memoized the walk");
    let rec_warm = sys.execute(PeerId(3), &plan, &rec_opts).unwrap();
    assert_eq!(rec_warm.terms("x"), rec_cold.terms("x"));
    assert_eq!(rec_warm.stats.cache_hits, 1);
    // The tail replay skips every deeper mapping-list retrieve (routes
    // to a delegate can be free in a small overlay, so the structural
    // guarantee is on fetches, not raw messages).
    assert_eq!(
        rec_cold.stats.mapping_fetches,
        rec_cold.stats.schemas_visited
    );
    assert_eq!(
        rec_warm.stats.mapping_fetches, 1,
        "only the delegate hop fetched"
    );
    assert!(rec_warm.stats.messages <= rec_cold.stats.messages);
}

/// The per-peer caches are capacity-bounded: with room for one closure
/// a second key evicts the first (counted in `cache_evictions`), and a
/// warm bounded replay still returns identical rows with strictly
/// fewer messages.
#[test]
fn bounded_cache_evicts_and_still_replays_correctly() {
    let facts: Vec<(u8, u8, u8)> = (0..12).map(|i| (i, i % 3, 0)).collect();
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: PEERS,
        seed: 42,
        closure_cache_capacity: 1,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..3 {
        sys.insert_schema(
            p0,
            Schema::new(
                format!("S{i}").as_str(),
                [format!("organism{i}"), format!("length{i}")],
            ),
        )
        .unwrap();
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", (i + 1) % 3).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(
                format!("organism{i}"),
                format!("organism{}", (i + 1) % 3),
            )],
        )
        .unwrap();
    }
    for &(e, s, _) in &facts {
        let s = (s as usize) % 3;
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:E{:02}", e % 12).as_str(),
                format!("S{s}#organism{s}").as_str(),
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
    }
    let organism_in = |i: usize| {
        QueryPlan::search(
            TriplePatternQuery::new(
                "x",
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri(format!("S{i}#organism{i}"))),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
            )
            .unwrap(),
        )
    };
    let origin = PeerId(5);
    let opts = QueryOptions::default();
    let cold0 = sys.execute(origin, &organism_in(0), &opts).unwrap();
    assert_eq!(sys.cached_closures(), 1);
    // A different predicate is a different key: it displaces the first
    // closure (capacity 1) and the eviction is counted.
    let cold1 = sys.execute(origin, &organism_in(1), &opts).unwrap();
    assert_eq!(sys.cached_closures(), 1, "capacity bound respected");
    assert_eq!(cold1.stats.cache_evictions, 1);
    // S1's closure is the retained one: replaying it is warm (identical
    // rows, strictly fewer messages); S0's was evicted, so it is cold
    // again.
    let warm1 = sys.execute(origin, &organism_in(1), &opts).unwrap();
    assert_eq!(warm1.rows, cold1.rows);
    assert_eq!(warm1.stats.cache_hits, 1);
    assert_eq!(warm1.stats.mapping_fetches, 0);
    assert!(warm1.stats.messages < cold1.stats.messages);
    let re0 = sys.execute(origin, &organism_in(0), &opts).unwrap();
    assert_eq!(re0.rows, cold0.rows);
    assert_eq!(re0.stats.cache_hits, 0, "evicted entry misses");
    // Epoch bumps still invalidate the bounded cache wholesale.
    sys.insert_mapping(
        p0,
        "S0",
        "S2",
        MappingKind::Equivalence,
        Provenance::Automatic,
        vec![Correspondence::new("length0", "length2")],
    )
    .unwrap();
    assert_eq!(sys.cached_closures(), 0, "stale cache counts as empty");
}

/// Bound-substitution joins share one closure per predicate: after the
/// first substituted instance's cold walk, every later instance replays
/// the cache within the *same* execute call.
#[test]
fn bound_join_instances_share_the_closure_cache() {
    let facts: Vec<(u8, u8, u8)> = (0..12).map(|i| (i, i % 3, i % 2)).collect();
    let plan = QueryPlan::conjunctive(organism_length_query());
    let mut sys = build(7, 3, &[], &facts);
    let out = sys
        .execute(
            PeerId(5),
            &plan,
            &QueryOptions::new().join_mode(JoinMode::BoundSubstitution),
        )
        .unwrap();
    assert!(!out.rows.is_empty());
    // Both predicates' closures are memoized by the end of the call.
    assert_eq!(sys.cached_closures(), 2);
}

/// Dropping a session mid-walk stops issuing subqueries: the overlay
/// message counter freezes, and the system remains fully usable.
#[test]
fn dropping_a_session_stops_messages() {
    let facts: Vec<(u8, u8, u8)> = (0..12).map(|i| (i, i % 4, 0)).collect();
    let plan = QueryPlan::search(organism_query());
    let options = QueryOptions::default();
    let mut sys = build(11, 4, &[], &facts);
    let before_open = sys.messages_sent();
    let observed = {
        let mut session = sys.open(PeerId(2), &plan, &options).unwrap();
        // Pull a prefix of the walk only.
        let mut pulled = 0;
        while pulled < 3 {
            match session.next_event().unwrap() {
                Some(_) => pulled += 1,
                None => break,
            }
        }
        assert!(!session.is_complete(), "the walk has hops left");
        session.stats().messages
        // Drop the session here — no drain.
    };
    assert!(observed > 0, "the pulled prefix did real work");
    assert_eq!(
        sys.messages_sent(),
        before_open + observed,
        "dropping the session issued nothing beyond what the pulls observed"
    );
    // A partial walk must not have been recorded as a full closure.
    assert_eq!(sys.cached_closures(), 0);
    // The system still answers (and now records the full closure).
    let out = sys.execute(PeerId(2), &plan, &options).unwrap();
    assert!(out.stats.schemas_visited >= 1);
    assert_eq!(sys.cached_closures(), 1);
}

/// `limit(k)` sends strictly fewer messages than the unlimited run for
/// k ≪ result count, and still returns exactly k rows — on identically
/// seeded systems, so the comparison is deterministic.
#[test]
fn limit_k_sends_strictly_fewer_messages() {
    // Every entity in every schema matches: a deep closure with many
    // rows, of which we want one.
    let facts: Vec<(u8, u8, u8)> = (0..24).map(|i| (i % 12, i % 4, 0)).collect();
    let plan = QueryPlan::search(organism_query());
    let mut full_sys = build(23, 4, &[], &facts);
    let full = full_sys
        .execute(PeerId(9), &plan, &QueryOptions::default())
        .unwrap();
    assert!(full.rows.len() > 3, "enough rows to make 1 a real cap");

    let mut limited_sys = build(23, 4, &[], &facts);
    let limited = limited_sys
        .execute(PeerId(9), &plan, &QueryOptions::new().limit(1))
        .unwrap();
    assert_eq!(limited.rows.len(), 1);
    assert!(
        limited.stats.messages < full.stats.messages,
        "limit 1 must cut messages: {} vs {}",
        limited.stats.messages,
        full.stats.messages
    );
    assert!(limited.stats.subqueries < full.stats.subqueries);
    // The kept row is one of the full run's rows.
    assert!(full.rows.contains(&limited.rows[0]));

    // Same property for a bound-substitution join: the last pattern's
    // remaining groups are skipped once k rows completed.
    let jplan = QueryPlan::conjunctive(organism_length_query());
    let jopts = QueryOptions::new().join_mode(JoinMode::BoundSubstitution);
    let mut full_sys = build(23, 4, &[], &facts);
    let jfull = full_sys.execute(PeerId(9), &jplan, &jopts).unwrap();
    assert!(jfull.rows.len() > 1);
    let mut limited_sys = build(23, 4, &[], &facts);
    let jlim = limited_sys
        .execute(PeerId(9), &jplan, &jopts.limit(1))
        .unwrap();
    assert_eq!(jlim.rows.len(), 1);
    assert!(
        jlim.stats.messages < jfull.stats.messages,
        "join limit 1 must cut messages: {} vs {}",
        jlim.stats.messages,
        jfull.stats.messages
    );
}

/// The executor honours its options: a TTL override stops the closure,
/// and TTL is part of the cache key (different TTLs never share an
/// entry).
#[test]
fn options_ttl_is_honoured_and_keyed() {
    let facts: Vec<(u8, u8, u8)> = (0..12).map(|i| (i, i % 3, i % 5)).collect();
    let q = organism_query();
    let mut sys = build(42, 3, &[], &facts);
    let full = sys
        .execute(
            PeerId(3),
            &QueryPlan::search(q.clone()),
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(full.stats.reformulations > 0, "chain must reformulate");
    let capped = sys
        .execute(
            PeerId(3),
            &QueryPlan::search(q.clone()),
            &QueryOptions::new().ttl(0),
        )
        .unwrap();
    assert_eq!(capped.stats.reformulations, 0);
    assert_eq!(capped.stats.schemas_visited, 1);
    // Two distinct cache entries: ttl=default and ttl=0.
    assert_eq!(sys.cached_closures(), 2);
}

/// `QueryPlan::single` routes each query shape to the executor path the
/// legacy API required the caller to pick by hand.
#[test]
fn auto_planned_queries_execute() {
    let facts: Vec<(u8, u8, u8)> = (0..10).map(|i| (i, 0, i % 5)).collect();
    let mut sys = build(7, 2, &[], &facts);

    // Schema'd predicate → closure.
    let out = sys
        .execute(
            PeerId(1),
            &QueryPlan::single(organism_query()),
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(out.stats.schemas_visited >= 1);

    // Prefix-only query → range sweep.
    let prefix_q = TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::var("p"),
            PatternTerm::constant(Term::literal("Aspergillus%")),
        ),
    )
    .unwrap();
    let swept = sys
        .execute(
            PeerId(1),
            &QueryPlan::single(prefix_q),
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(!swept.rows.is_empty());
    assert!(swept.stats.subqueries >= 1);
}
