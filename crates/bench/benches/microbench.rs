//! Criterion micro-benchmarks over the reproduction's hot paths.
//!
//! One group per paper-relevant operation:
//! * `hash` — order-preserving vs uniform key hashing (§2.2);
//! * `routing` — messages/latency of `Retrieve` routing across network
//!   sizes (§2.1, the O(log n) claim in wall-clock form);
//! * `rdf` — the interned-dictionary / id-index / hash-join hot paths
//!   at 100k triples (bulk ingest, point selection, prefix range scan,
//!   3-pattern conjunctive join);
//! * `triple_store` — insert and indexed selection on `DB_p` (§2.2);
//! * `reformulate` — BFS query expansion over mapping chains (§3);
//! * `matcher` — combined lexical+instance matching of two schemas (§4);
//! * `bayes` — cycle enumeration + belief propagation (§3.2);
//! * `search` — end-to-end `SearchFor` on the synchronous system;
//! * `conjunctive` — distributed two-pattern joins under both join
//!   policies (§2.3, ablation A4);
//! * `compose` — mapping-path composition and BFS path search (§3.2
//!   repair machinery);
//! * `netsim` — the simulator's inner loop: event queue, WAN latency
//!   sampling, CDF quantiles.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gridvine_core::{GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryPlan, Strategy};
use gridvine_pgrid::{
    HashKind, KeyHasher, OrderPreservingHash, Overlay, PeerId, Topology, UniformHash,
};
use gridvine_rdf::{ConjunctiveQuery, Term, Triple, TriplePatternQuery, TripleStore};
use gridvine_semantic::{
    assess, compose_path, find_path, match_profiles, reformulations, BayesConfig, Correspondence,
    MappingKind, MappingRegistry, MatcherConfig, Provenance, Schema, SchemaId,
};
use gridvine_workload::{Workload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    let op = OrderPreservingHash::default();
    let uni = UniformHash;
    g.bench_function("order_preserving_24b", |b| {
        b.iter(|| op.hash(black_box("EMBL#OrganismClassification"), 24))
    });
    g.bench_function("uniform_24b", |b| {
        b.iter(|| uni.hash(black_box("EMBL#OrganismClassification"), 24))
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = Topology::balanced(n, 2, &mut rng);
        let mut overlay: Overlay<u8> = Overlay::new(&topo);
        let h = OrderPreservingHash::default();
        let keys: Vec<_> = (0..256).map(|i| h.hash(&format!("k{i}"), 24)).collect();
        g.bench_with_input(BenchmarkId::new("retrieve", n), &n, |b, &n| {
            let mut i = 0usize;
            b.iter(|| {
                let key = &keys[i % keys.len()];
                let origin = PeerId::from_index(i % n);
                i += 1;
                overlay.route(origin, black_box(key), &mut rng).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_rdf(c: &mut Criterion) {
    // The dictionary/id/hash-join hot paths at 100k triples. The
    // before/after comparison against the seed's string-keyed
    // nested-loop implementation lives in the `bench_rdf` binary
    // (writes BENCH_rdf.json); this group tracks the new engine.
    let entities = 33_334usize;
    let mut triples: Vec<Triple> = Vec::with_capacity(entities * 3);
    for i in 0..entities {
        let subject = format!("http://www.ebi.ac.uk/embl/entry#E{i:06}");
        let organism = if i < 64 {
            format!("Aspergillus niger strain {i}")
        } else {
            format!("Escherichia coli K-12 MG{i}")
        };
        triples.push(Triple::new(
            subject.as_str(),
            "http://www.ebi.ac.uk/embl/schema#organism",
            Term::literal(organism),
        ));
        triples.push(Triple::new(
            subject.as_str(),
            "http://www.ebi.ac.uk/embl/schema#length",
            Term::literal(format!("{}", 400 + i % 4000)),
        ));
        triples.push(Triple::new(
            subject.as_str(),
            "http://www.ebi.ac.uk/embl/schema#lab",
            Term::uri(format!("http://collab.embl.org/labs#L{:03}", i % 500)),
        ));
    }
    let mut g = c.benchmark_group("rdf");
    g.bench_function("bulk_ingest_100k", |b| {
        b.iter(|| {
            let mut db = TripleStore::new();
            db.insert_batch(triples.iter().cloned());
            db.len()
        })
    });
    let mut db = TripleStore::new();
    db.insert_batch(triples.iter().cloned());
    g.bench_function("select_eq", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % entities;
            db.select_eq_rows(
                gridvine_rdf::Position::Subject,
                &format!("http://www.ebi.ac.uk/embl/entry#E{i:06}"),
            )
            .count()
        })
    });
    g.bench_function("select_eq_zone_scan", |b| {
        b.iter(|| {
            db.scan_eq_rows(
                gridvine_rdf::Position::Predicate,
                black_box("http://www.ebi.ac.uk/embl/schema#organism"),
            )
            .count()
        })
    });
    g.bench_function("select_like_prefix", |b| {
        b.iter(|| {
            db.select_like(gridvine_rdf::Position::Object, black_box("Aspergillus%"))
                .len()
        })
    });
    let q = ConjunctiveQuery::new(
        vec!["x".into(), "len".into(), "lab".into()],
        vec![
            gridvine_rdf::TriplePattern::new(
                gridvine_rdf::PatternTerm::var("x"),
                gridvine_rdf::PatternTerm::constant(Term::uri(
                    "http://www.ebi.ac.uk/embl/schema#organism",
                )),
                gridvine_rdf::PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            gridvine_rdf::TriplePattern::new(
                gridvine_rdf::PatternTerm::var("x"),
                gridvine_rdf::PatternTerm::constant(Term::uri(
                    "http://www.ebi.ac.uk/embl/schema#length",
                )),
                gridvine_rdf::PatternTerm::var("len"),
            ),
            gridvine_rdf::TriplePattern::new(
                gridvine_rdf::PatternTerm::var("x"),
                gridvine_rdf::PatternTerm::constant(Term::uri(
                    "http://www.ebi.ac.uk/embl/schema#lab",
                )),
                gridvine_rdf::PatternTerm::var("lab"),
            ),
        ],
    )
    .expect("valid query");
    g.bench_function("conjunctive_join_3_100k", |b| {
        b.iter(|| q.evaluate(black_box(&db)).len())
    });
    g.finish();
}

fn bench_triple_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("triple_store");
    let w = Workload::generate(WorkloadConfig::small(3));
    let triples: Vec<Triple> = w.all_triples().into_iter().map(|(_, t)| t).collect();
    g.bench_function("insert_1k", |b| {
        b.iter(|| {
            let mut db = TripleStore::new();
            for t in triples.iter().take(1000) {
                db.insert(black_box(t.clone()));
            }
            db.len()
        })
    });
    let mut db = TripleStore::new();
    for t in &triples {
        db.insert(t.clone());
    }
    let q = TriplePatternQuery::example_aspergillus();
    g.bench_function("resolve_pattern", |b| {
        b.iter(|| db.resolve(black_box(&q.pattern), "x"))
    });
    g.finish();
}

fn chain_registry(len: usize) -> MappingRegistry {
    let mut reg = MappingRegistry::new();
    for i in 0..=len {
        reg.add_schema(Schema::new(format!("S{i}").as_str(), [format!("a{i}")]));
    }
    for i in 0..len {
        reg.add_mapping(
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        );
    }
    reg
}

fn bench_reformulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("reformulate");
    for len in [4usize, 16, 49] {
        let reg = chain_registry(len);
        let q = TriplePatternQuery::new(
            "x",
            gridvine_rdf::TriplePattern::new(
                gridvine_rdf::PatternTerm::var("x"),
                gridvine_rdf::PatternTerm::constant(Term::uri("S0#a0")),
                gridvine_rdf::PatternTerm::var("o"),
            ),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("chain", len), &len, |b, _| {
            b.iter(|| {
                reformulations(black_box(&reg), black_box(&q), 64)
                    .unwrap()
                    .len()
            })
        });
    }
    g.finish();
}

fn bench_matcher(c: &mut Criterion) {
    let w = Workload::generate(WorkloadConfig::small(5));
    let a = w.profile_of(w.schemas[0].id());
    let b2 = w.profile_of(w.schemas[1].id());
    let cfg = MatcherConfig::default();
    c.bench_function("matcher/match_pair", |b| {
        b.iter(|| match_profiles(black_box(&a), black_box(&b2), &cfg).len())
    });
}

fn bench_bayes(c: &mut Criterion) {
    // Ring of 8 schemas with 3 chords: a cycle-rich assessment input.
    let mut reg = chain_registry(8);
    for (s, t) in [(0usize, 4usize), (2, 6), (1, 5)] {
        reg.add_mapping(
            format!("S{s}").as_str(),
            format!("S{t}").as_str(),
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new(format!("a{s}"), format!("a{t}"))],
        );
    }
    let cfg = BayesConfig::default();
    c.bench_function("bayes/assess_ring8", |b| {
        b.iter(|| assess(black_box(&reg), &cfg).posteriors.len())
    });
}

fn bench_search(c: &mut Criterion) {
    let w = Workload::generate(WorkloadConfig::small(7));
    let build = || {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 64,
            hash: HashKind::OrderPreserving,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        for s in &w.schemas {
            sys.insert_schema(p0, s.clone()).unwrap();
        }
        for s in &w.schemas {
            sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
        }
        for i in 0..w.schemas.len() - 1 {
            let a = w.schemas[i].id().clone();
            let b = w.schemas[i + 1].id().clone();
            let corrs = w.ground_truth.correct_pairs(&a, &b);
            sys.insert_mapping(
                p0,
                a,
                b,
                MappingKind::Equivalence,
                Provenance::Manual,
                corrs,
            )
            .unwrap();
        }
        sys
    };
    let mut sys = build();
    let q = TriplePatternQuery::example_aspergillus();
    let mut g = c.benchmark_group("search");
    let mut rng = StdRng::seed_from_u64(1);
    let plan = QueryPlan::search(q);
    g.bench_function("iterative", |b| {
        b.iter(|| {
            let origin = PeerId::from_index(rng.gen_range(0..64));
            sys.execute(
                origin,
                black_box(&plan),
                &QueryOptions::new().strategy(Strategy::Iterative),
            )
            .unwrap()
            .rows
            .len()
        })
    });
    g.bench_function("recursive", |b| {
        b.iter(|| {
            let origin = PeerId::from_index(rng.gen_range(0..64));
            sys.execute(
                origin,
                black_box(&plan),
                &QueryOptions::new().strategy(Strategy::Recursive),
            )
            .unwrap()
            .rows
            .len()
        })
    });
    g.finish();
}

fn bench_netsim(c: &mut Criterion) {
    use gridvine_netsim::{Cdf, EventQueue, LatencyModel, NodeId, RegionalWan, SimTime};
    let mut g = c.benchmark_group("netsim");
    // Event queue: schedule + drain 1k interleaved events (the
    // simulator's inner loop).
    g.bench_function("event_queue_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1000u32 {
                q.schedule(SimTime(((i * 2654435761) % 100_000) as u64), i);
            }
            let mut n = 0u32;
            while let Some((_, e)) = q.pop() {
                n = n.wrapping_add(e);
            }
            n
        })
    });
    // WAN latency sampling (the per-message cost of the E1 model).
    let mut wan = RegionalWan::planetlab(7);
    let mut i = 0u32;
    g.bench_function("wan_sample", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            wan.sample(
                NodeId::from_index((i % 340) as usize),
                NodeId::from_index(((i * 7) % 340) as usize),
            )
        })
    });
    // CDF quantile over 10k samples (the E1 post-processing).
    let mut cdf = Cdf::new();
    for k in 0..10_000 {
        cdf.record((k as f64 * 0.7919) % 60.0);
    }
    g.bench_function("cdf_median_10k", |b| {
        b.iter(|| black_box(&mut cdf).median())
    });
    g.finish();
}

fn bench_compose(c: &mut Criterion) {
    let mut g = c.benchmark_group("compose");
    for len in [4usize, 16, 49] {
        let reg = chain_registry(len);
        // The chain's full forward path (one step per mapping).
        let path: Vec<gridvine_semantic::Step> = reg
            .mappings()
            .map(|m| gridvine_semantic::Step {
                mapping: m.id,
                direction: gridvine_semantic::Direction::Forward,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("compose_path", len), &len, |b, _| {
            b.iter(|| {
                compose_path(black_box(&reg), black_box(&path))
                    .unwrap()
                    .quality
            })
        });
        let from = SchemaId::new("S0");
        let to = SchemaId::new(format!("S{len}"));
        g.bench_with_input(BenchmarkId::new("find_path", len), &len, |b, _| {
            b.iter(|| find_path(black_box(&reg), &from, &to).unwrap().len())
        });
    }
    g.finish();
}

fn bench_conjunctive(c: &mut Criterion) {
    // One schema, 8 selective matches among 400 entities, every entity
    // carrying a length fact: the A4 workload at fixed size.
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("EMBL", ["Organism", "SequenceLength"]))
        .unwrap();
    for i in 0..400usize {
        let subject = format!("seq:E{i:05}");
        let organism = if i < 8 {
            format!("Aspergillus strain {i}")
        } else {
            format!("Escherichia coli K-{i}")
        };
        sys.insert_triple(
            p0,
            Triple::new(subject.as_str(), "EMBL#Organism", Term::literal(organism)),
        )
        .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                subject.as_str(),
                "EMBL#SequenceLength",
                Term::literal(format!("{}", 400 + i)),
            ),
        )
        .unwrap();
    }
    let q = ConjunctiveQuery::new(
        vec!["x".into(), "len".into()],
        vec![
            gridvine_rdf::TriplePattern::new(
                gridvine_rdf::PatternTerm::var("x"),
                gridvine_rdf::PatternTerm::constant(Term::uri("EMBL#Organism")),
                gridvine_rdf::PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            gridvine_rdf::TriplePattern::new(
                gridvine_rdf::PatternTerm::var("x"),
                gridvine_rdf::PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                gridvine_rdf::PatternTerm::var("len"),
            ),
        ],
    )
    .unwrap();
    let mut g = c.benchmark_group("conjunctive");
    let mut rng = StdRng::seed_from_u64(2);
    let plan = QueryPlan::conjunctive(q);
    for (name, mode) in [
        ("independent", JoinMode::Independent),
        ("bound_substitution", JoinMode::BoundSubstitution),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let origin = PeerId::from_index(rng.gen_range(0..64));
                sys.execute(
                    origin,
                    black_box(&plan),
                    &QueryOptions::new()
                        .strategy(Strategy::Iterative)
                        .join_mode(mode),
                )
                .unwrap()
                .rows
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_routing,
    bench_rdf,
    bench_triple_store,
    bench_reformulate,
    bench_matcher,
    bench_bayes,
    bench_search,
    bench_conjunctive,
    bench_compose,
    bench_netsim
);
criterion_main!(benches);
