//! # gridvine-bench
//!
//! Experiment harness for the GridVine reproduction: one binary per
//! figure/claim of the paper (see `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for paper-vs-measured results), plus Criterion
//! micro-benchmarks over the hot paths.
//!
//! Binaries (all print aligned text tables to stdout):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_e1_latency_cdf` | §2.3: 340 machines, 17 000 triples, 23 000 queries → latency CDF |
//! | `exp_e2_routing_cost` | §2.1/2.3: `O(log Π)` messages per Retrieve |
//! | `exp_e3_connectivity` | §3.1: connectivity indicator vs giant-SCC emergence |
//! | `exp_e4_recall_growth` | §4: recall rises as mappings are created |
//! | `exp_e5_deprecation` | §4: erroneous mappings deprecated, recall recovers |
//! | `exp_e6_iter_vs_rec` | §4: iterative vs recursive reformulation |
//! | `exp_a1_hash_balance` | ablation: order-preserving vs uniform hash balance |
//! | `exp_a2_churn` | ablation: availability under churn vs replication |
//! | `exp_a3_matcher` | ablation: lexical vs instance vs combined matcher |

pub mod table;

pub use table::Table;
