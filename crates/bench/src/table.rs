//! Minimal aligned-text table formatting shared by the experiment
//! binaries, so every `exp_*` run prints uniform, diff-able output.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row; panics if the width disagrees with the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with fixed precision (table cell helper).
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "value"]);
        t.row(&["1".into(), "short".into()]);
        t.row(&["1000".into(), "x".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equally wide.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].starts_with("1000"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(0.5, 3), "0.500");
    }
}
