//! Robustness R3 — riding out churn with backoff (§2.1).
//!
//! "…efficient even in highly unreliable, dynamic environments."
//!
//! Every peer except the query origin goes down at t=0 and recovers
//! after a sweep-controlled outage, while replies also suffer
//! reordering jitter. The retry protocol's exponential backoff
//! (base 5ms, doubling per attempt) determines how long an outage a
//! given retry budget can bridge: short outages are absorbed by one or
//! two retransmits, long ones exhaust small budgets and surface as
//! recorded failures — never as hangs.
//!
//! Usage: `exp_r3_reorder_churn [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_netsim::churn::{ChurnEvent, ChurnKind};
use gridvine_netsim::{FaultConfig, NodeId, SimDuration, SimTime};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

const CHAIN: usize = 6;
const PEERS: usize = 64;

fn build_chain(seed: u64) -> GridVineSystem {
    let mut cfg = FaultConfig::none();
    cfg.reorder = 0.5;
    cfg.reorder_jitter = SimDuration::from_millis(10);
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: PEERS,
        fault: cfg,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..=CHAIN {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
    }
    for i in 0..CHAIN {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    sys
}

fn query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("target-value")),
        ),
    )
    .unwrap()
}

fn outage(origin: PeerId, millis: u64) -> Vec<ChurnEvent> {
    (0..PEERS)
        .filter(|&i| i != origin.index())
        .flat_map(|i| {
            [
                ChurnEvent {
                    at: SimTime::ZERO,
                    node: NodeId::from_index(i),
                    kind: ChurnKind::Fail,
                },
                ChurnEvent {
                    at: SimTime::ZERO + SimDuration::from_millis(millis),
                    node: NodeId::from_index(i),
                    kind: ChurnKind::Recover,
                },
            ]
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("R3: bridging an outage with exponential backoff ({repeats} repeats per point)");
    let plan = QueryPlan::search(query());
    let full_rows = (CHAIN + 1) * repeats;

    let mut table = Table::new(&[
        "outage ms",
        "retries",
        "rows",
        "timeouts/q",
        "retransmits/q",
        "exhausted/q",
    ]);
    for millis in [2u64, 10, 50] {
        for retries in [1usize, 3, 8] {
            let mut rows = 0usize;
            let mut timeouts = 0usize;
            let mut retransmits = 0usize;
            let mut failures = 0usize;
            for rep in 0..repeats {
                let mut sys = build_chain(seed + rep as u64);
                let origin = sys.random_peer();
                sys.install_churn(&outage(origin, millis));
                let out = sys
                    .execute(
                        origin,
                        &plan,
                        &QueryOptions::new()
                            .strategy(Strategy::Iterative)
                            .window(4)
                            .max_retries(retries),
                    )
                    .unwrap();
                rows += out.rows.len();
                timeouts += out.stats.timeouts;
                retransmits += out.stats.retransmits;
                failures += out.stats.failures;
            }
            table.row(&[
                millis.to_string(),
                retries.to_string(),
                f(rows as f64 / full_rows as f64, 3),
                f(timeouts as f64 / repeats as f64, 2),
                f(retransmits as f64 / repeats as f64, 2),
                f(failures as f64 / repeats as f64, 2),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: a 2ms outage is bridged by a single retransmit; 50ms needs\nthe larger budgets (backoff reaches ~35-50ms after 3 retries), and the\nexhausted column shows small budgets giving up instead of hanging.");
}
