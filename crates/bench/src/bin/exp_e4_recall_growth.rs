//! Experiment E4 — recall growth through self-organization (§4).
//!
//! "In a sparse network of mappings, few results get returned initially
//! (low recall), while more and more results are retrieved as mappings
//! get created automatically to ensure the global interoperability of
//! the system."
//!
//! Loads the bioinformatics corpus into a GridVine system seeded with a
//! short manual mapping chain, then alternates self-organization rounds
//! with a probe query batch, reporting mean recall, active mappings and
//! the connectivity indicator per round.
//!
//! Usage: `exp_e4_recall_growth [rounds] [probe_queries] [schemas] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, SelfOrgConfig, Strategy,
};
use gridvine_netsim::rng;
use gridvine_pgrid::PeerId;
use gridvine_semantic::{MappingKind, Provenance};
use gridvine_workload::{recall, QueryConfig, QueryGenerator, Workload, WorkloadConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let probes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let schemas: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("E4: recall growth — {schemas} schemas, {rounds} self-organization rounds");
    let workload = Workload::generate(WorkloadConfig {
        schemas,
        entities: 200,
        export_fraction: 0.35,
        ..WorkloadConfig::default()
    });
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &workload.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    let mut loaded = 0;
    for s in &workload.schemas {
        loaded += sys.insert_triples(p0, workload.triples_of(s.id())).unwrap();
    }
    // Manual seed: a 3-link chain, as entered at schema-insertion time.
    for i in 0..3.min(workload.schemas.len() - 1) {
        let a = workload.schemas[i].id().clone();
        let b = workload.schemas[i + 1].id().clone();
        let corrs = workload.ground_truth.correct_pairs(&a, &b);
        sys.insert_mapping(
            p0,
            a,
            b,
            MappingKind::Equivalence,
            Provenance::Manual,
            corrs,
        )
        .unwrap();
    }
    println!(
        "loaded {loaded} triples; {} manual seed mappings",
        sys.registry().active_count()
    );

    let generator = QueryGenerator::new(&workload, QueryConfig::default());
    let mut qrng = rng::derive(seed, 0xE4);
    let probe_set = generator.batch(probes, &mut qrng);

    let probe = |sys: &mut GridVineSystem| -> (f64, f64) {
        let mut total_recall = 0.0;
        let mut total_msgs = 0.0;
        let mut counted = 0usize;
        for g in &probe_set {
            if g.true_answers.is_empty() {
                continue;
            }
            let origin = sys.random_peer();
            let plan = QueryPlan::search(g.query.clone());
            let opts = QueryOptions::new().strategy(Strategy::Iterative);
            if let Ok(out) = sys.execute(origin, &plan, &opts) {
                total_recall += recall(&out.accessions(), &g.true_answers);
                total_msgs += out.stats.messages as f64;
                counted += 1;
            }
        }
        (
            total_recall / counted.max(1) as f64,
            total_msgs / counted.max(1) as f64,
        )
    };

    let cfg = SelfOrgConfig {
        max_new_mappings: 6,
        ..SelfOrgConfig::default()
    };
    let mut table = Table::new(&[
        "round",
        "ci",
        "active mappings",
        "created",
        "deprecated",
        "largest SCC",
        "mean recall",
        "msgs/query",
    ]);
    let (r0, m0) = probe(&mut sys);
    table.row(&[
        "0".into(),
        "-".into(),
        sys.registry().active_count().to_string(),
        "-".into(),
        "-".into(),
        f(sys.registry().largest_scc_fraction(), 2),
        f(r0, 3),
        f(m0, 1),
    ]);
    for round in 1..=rounds {
        let rep = sys.self_organization_round(&cfg).unwrap();
        let (rec, msgs) = probe(&mut sys);
        table.row(&[
            round.to_string(),
            f(rep.ci, 3),
            rep.active_mappings.to_string(),
            rep.created.len().to_string(),
            rep.deprecated.len().to_string(),
            f(rep.largest_scc_fraction, 2),
            f(rec, 3),
            f(msgs, 1),
        ]);
    }
    println!("\n{}", table.render());
    println!("paper claim: recall starts low under the sparse seed network and rises as\nautomatic mappings connect the schemas.");
}
