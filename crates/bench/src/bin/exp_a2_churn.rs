//! Ablation A2 — availability under churn vs replication (§2.1).
//!
//! "Peers also maintain references σ(p) to peers having the same path,
//! i.e., their replicas that duplicate their content to ensure
//! fault-tolerance and resilience to network churn. … The Retrieve and
//! the Update operations provide probabilistic guarantees for data
//! consistency and are efficient even in highly unreliable, dynamic
//! environments."
//!
//! Runs query batches over the event-driven deployment while a churn
//! process fails and recovers peers, sweeping the replication factor
//! (peers per path), and reports the answered fraction.
//!
//! Usage: `exp_a2_churn [queries] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::MediationItem;
use gridvine_netsim::churn::ChurnKind;
use gridvine_netsim::prelude::*;
use gridvine_netsim::rng;
use gridvine_pgrid::proto::{PGridMsg, PGridNode, Status};
use gridvine_pgrid::{BitString, KeyHasher, OrderPreservingHash, Topology};
use gridvine_rdf::{Term, Triple};
use rand::Rng;

const PATHS: usize = 32; // depth-5 tree, 32 leaf paths

fn run(replication: usize, churn: &ChurnConfig, queries: usize, seed: u64) -> (f64, f64) {
    let peers = PATHS * replication;
    let mut rtop = rng::derive(seed, replication as u64);
    // Explicit paths: `replication` peers per depth-5 path.
    let mut paths = Vec::with_capacity(peers);
    for leaf in 0..PATHS {
        for _ in 0..replication {
            paths.push(BitString::from_u64(leaf as u64, 5));
        }
    }
    let topology = Topology::from_paths(paths, 3, &mut rtop);
    topology.validate().expect("valid");

    let mut net: Network<PGridNode<MediationItem>, PGridMsg<MediationItem>> =
        Network::new(NetworkConfig::planetlab(), seed);
    for i in 0..peers {
        net.add_node(PGridNode::from_topology(
            &topology,
            i,
            SimDuration::from_secs(10),
        ));
    }

    // Preload: one triple per key, placed on all replicas.
    let hasher = OrderPreservingHash::default();
    let n_items = 500;
    let mut keys = Vec::new();
    for i in 0..n_items {
        let value = format!("item-{i}");
        let key = hasher.hash(&value, 24);
        let t = Triple::new(
            format!("seq:I{i}").as_str(),
            "DB#Value",
            Term::literal(value),
        );
        for p in topology.responsible(&key).to_vec() {
            net.node_mut(NodeId::from_index(p.index()))
                .store_mut()
                .insert(key.clone(), MediationItem::Triple(t.clone()));
        }
        keys.push(key);
    }

    // Churn + queries interleaved over one simulated hour.
    let horizon = SimTime(3_600_000_000);
    let mut churn_proc = ChurnProcess::generate(churn, peers, horizon, seed);
    let mut qr = rng::derive(seed, 0xA2);
    let mut submitted = 0usize;
    let gap = horizon.as_micros() / queries as u64;
    for qi in 0..queries {
        let at = SimTime(qi as u64 * gap);
        net.run_until(at);
        for ev in churn_proc.due(at) {
            match ev.kind {
                ChurnKind::Fail => net.crash(ev.node),
                ChurnKind::Recover => net.recover(ev.node),
            }
        }
        let alive = net.alive_nodes();
        if alive.is_empty() {
            continue;
        }
        let origin = alive[qr.gen_range(0..alive.len())];
        let key = keys[qr.gen_range(0..keys.len())].clone();
        net.invoke(origin, move |node, ctx| node.start_retrieve(ctx, key));
        submitted += 1;
    }
    net.run_until_quiescent();

    let mut ok = 0usize;
    let mut failed = 0usize;
    for i in 0..peers {
        for o in net.node_mut(NodeId::from_index(i)).drain_completed() {
            match o.status {
                Status::Ok => ok += 1,
                Status::NotFound | Status::TimedOut => failed += 1,
            }
        }
    }
    let answered = ok as f64 / submitted.max(1) as f64;
    let lost = failed as f64 / submitted.max(1) as f64;
    (answered, lost)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let queries: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("A2: availability under churn vs replication factor ({queries} queries / hour)");
    let mut table = Table::new(&["churn", "replicas/path", "answered", "failed"]);
    for (name, cfg) in [
        (
            "none",
            ChurnConfig {
                churny_fraction: 0.0,
                ..ChurnConfig::moderate()
            },
        ),
        ("moderate", ChurnConfig::moderate()),
        ("harsh", ChurnConfig::harsh()),
    ] {
        for replication in [1usize, 2, 4] {
            let (answered, lost) = run(replication, &cfg, queries, seed);
            table.row(&[
                name.to_string(),
                replication.to_string(),
                f(answered, 3),
                f(lost, 3),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: without churn everything answers; under churn availability\ndegrades for unreplicated paths and is largely recovered by σ(p) replication.");
}
