//! Ablation A1 — order-preserving vs uniform hash under skew (§2.2).
//!
//! GridVine's order-preserving hash keeps lexicographically close keys
//! together (enabling the `%prefix%`-style searches of §2.3) at the
//! price of storage skew when the key population is skewed; the
//! classic uniform hash balances load but destroys locality. This
//! ablation quantifies the trade, with and without the data-adapted
//! (unbalanced) trie that P-Grid uses to win the balance back.
//!
//! Usage: `exp_a1_hash_balance [peers] [triples] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_netsim::rng;
use gridvine_netsim::rng::Zipf;
use gridvine_pgrid::{BitString, HashKind, LoadStats, Overlay, PeerId, Topology, UpdateOp};
use gridvine_workload::ORGANISMS;
use rand::Rng;

/// 64-bit keys: deep enough for the order-preserving hash to resolve
/// past the shared `seq:P` prefix of accession subjects (each character
/// consumes ≈6.6 bits).
const KEY_DEPTH: usize = 64;

fn keys_for_corpus(hash: HashKind, n: usize, seed: u64) -> Vec<BitString> {
    let hasher = hash.build();
    let zipf = Zipf::new(ORGANISMS.len(), 1.0);
    let mut r = rng::derive(seed, 0xA1);
    (0..n)
        .map(|i| match i % 3 {
            // Subjects: unique accessions (shared "seq:P" prefix —
            // the order-preserving pain case).
            0 => hasher.hash(&format!("seq:P{:05}", r.gen_range(0..60_000)), KEY_DEPTH),
            // Predicates: few and hot.
            1 => hasher.hash(&format!("EMBL#Attr{}", r.gen_range(0..12)), KEY_DEPTH),
            // Objects: Zipf-skewed organism names.
            _ => hasher.hash(ORGANISMS[zipf.sample(&mut r)], KEY_DEPTH),
        })
        .collect()
}

fn load_stats(topology: &Topology, keys: &[BitString], seed: u64) -> LoadStats {
    let mut overlay: Overlay<u32> = Overlay::new(topology).without_replication();
    let mut r = rng::derive(seed, 0xA1F);
    for (i, key) in keys.iter().enumerate() {
        overlay
            .update(PeerId(0), UpdateOp::Insert, key.clone(), i as u32, &mut r)
            .expect("routable");
    }
    LoadStats::compute(&overlay.load_vector())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let triples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("A1: storage balance — {peers} peers, {triples} index entries");
    let mut table = Table::new(&["hash", "tree", "gini", "max/mean", "empty %"]);
    let mut r = rng::derive(seed, 7);

    for hash in [HashKind::OrderPreserving, HashKind::Uniform] {
        let keys = keys_for_corpus(hash, triples, seed);

        let balanced = Topology::balanced(peers, 2, &mut r);
        let s = load_stats(&balanced, &keys, seed);
        table.row(&[
            format!("{hash:?}"),
            "balanced".into(),
            f(s.gini, 3),
            f(s.imbalance, 1),
            f(s.empty_fraction * 100.0, 1),
        ]);

        // Data-adapted trie: P-Grid splits where the data is.
        let adapted = Topology::adapted(&keys, peers, triples / peers, KEY_DEPTH, 2, &mut r);
        if adapted.validate().is_ok() {
            let s = load_stats(&adapted, &keys, seed);
            table.row(&[
                format!("{hash:?}"),
                "adapted".into(),
                f(s.gini, 3),
                f(s.imbalance, 1),
                f(s.empty_fraction * 100.0, 1),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!(
        "expected shape: the uniform hash on a balanced tree is the only well-balanced\n\
         configuration; the order-preserving hash concentrates the skewed corpus\n\
         (every peer outside the populated key region is empty). The data-adapted\n\
         trie helps at the margin but cannot split *identical* hot keys (a popular\n\
         organism value is one key) — the irreducible per-key hotspot that P-Grid\n\
         addresses with σ(p) replication rather than with the trie shape."
    );
}
