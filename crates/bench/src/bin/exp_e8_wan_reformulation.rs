//! Experiment E8 — wide-area latency of *reformulated* queries (§4 over
//! the §2.3 deployment).
//!
//! The paper's latency numbers (E1) are for single triple-pattern
//! lookups; its demo separately shows queries being reformulated through
//! the mapping network. This experiment combines the two on the
//! simulated 340-machine testbed: the same query batch is disseminated
//! with increasing reformulation TTLs, and the end-to-end latency (the
//! moment the last reformulated result arrives) is compared to the plain
//! single-lookup baseline.
//!
//! Expected shape: answered ≤1 s fraction falls and the median rises as
//! the TTL (and thus the reachable schema set) grows — each extra
//! mapping hop costs one schema-key fetch plus one data lookup in
//! sequence — while recall-proxy (schemas reached, hits) grows. The
//! iterative strategy is charged here, matching E6's message analysis.
//!
//! Usage: `exp_e8_wan_reformulation [queries] [peers] [schemas] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{Deployment, DeploymentConfig};
use gridvine_pgrid::HashKind;
use gridvine_rdf::{ConjunctiveQuery, TriplePatternQuery};
use gridvine_semantic::{MappingKind, MappingRegistry, Provenance};
use gridvine_workload::{QueryConfig, QueryGenerator, Workload, WorkloadConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let queries: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(340);
    let schemas: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!(
        "E8: reformulated-query latency over the WAN — {peers} peers, {schemas} schemas, \
         {queries} queries, manual mapping chain"
    );

    let w = Workload::generate(WorkloadConfig {
        schemas,
        entities: 400,
        export_fraction: 0.35,
        seed,
        ..WorkloadConfig::default()
    });
    let mut registry = MappingRegistry::new();
    for s in &w.schemas {
        registry.add_schema(s.clone());
    }
    for i in 0..w.schemas.len() - 1 {
        let a = w.schemas[i].id().clone();
        let b = w.schemas[i + 1].id().clone();
        let corrs = w.ground_truth.correct_pairs(&a, &b);
        if !corrs.is_empty() {
            registry.add_mapping(a, b, MappingKind::Equivalence, Provenance::Manual, corrs);
        }
    }
    let mappings: Vec<_> = registry.mappings().cloned().collect();

    let build = |seed: u64| -> Deployment {
        let mut d = Deployment::new(DeploymentConfig {
            peers,
            hash: HashKind::OrderPreserving,
            ..DeploymentConfig::paper(seed)
        });
        let triples: Vec<_> = w.all_triples().into_iter().map(|(_, t)| t).collect();
        d.preload(triples);
        d.preload_mediation(w.schemas.clone(), mappings.iter());
        d
    };

    let gen = QueryGenerator::new(&w, QueryConfig::default());
    let mut r = gridvine_netsim::rng::seeded(seed ^ 0xE8);
    let batch: Vec<TriplePatternQuery> = gen
        .batch(queries, &mut r)
        .into_iter()
        .map(|g| g.query)
        .collect();

    let mut table = Table::new(&[
        "mode",
        "answered",
        "mean schemas",
        "≤1 s",
        "≤5 s",
        "median s",
        "p95 s",
        "data lookups",
        "mapping fetches",
    ]);

    // Baseline: plain single-pattern lookups (the E1 operation).
    let mut d = build(seed);
    let plain = d.run_queries(&batch);
    {
        let mut lat = plain.latencies.clone();
        table.row(&[
            "plain lookup".into(),
            plain.answered.to_string(),
            f(1.0, 2),
            f(lat.fraction_leq(1.0), 3),
            f(lat.fraction_leq(5.0), 3),
            f(lat.median(), 2),
            f(lat.quantile(0.95), 2),
            plain.answered.to_string(),
            "0".into(),
        ]);
    }

    for ttl in [1usize, 2, 4, 8] {
        let mut d = build(seed); // fresh network: no leftover load
        let rep = d.run_reformulated_queries(&batch, ttl);
        let mut lat = rep.latencies.clone();
        table.row(&[
            format!("reformulated ttl={ttl}"),
            rep.answered.to_string(),
            f(rep.mean_schemas, 2),
            f(lat.fraction_leq(1.0), 3),
            f(lat.fraction_leq(5.0), 3),
            f(lat.median(), 2),
            f(lat.quantile(0.95), 2),
            rep.data_lookups.to_string(),
            rep.mapping_fetches.to_string(),
        ]);
    }
    // Conjunctive queries (§2.3): two patterns disseminated in
    // parallel, joined at the origin — latency is the slower pattern's
    // chain, so it tracks the reformulated single-pattern numbers.
    let mut r2 = gridvine_netsim::rng::seeded(seed ^ 0xC0);
    let conj: Vec<ConjunctiveQuery> = gen
        .conjunctive_batch(queries / 4, &mut r2)
        .into_iter()
        .map(|g| g.query)
        .collect();
    let mut d = build(seed);
    let rep = d.run_conjunctive_queries(&conj, 4);
    let mut lat = rep.latencies.clone();
    table.row(&[
        "conjunctive ttl=4".into(),
        rep.answered.to_string(),
        f(rep.mean_rows, 2),
        f(lat.fraction_leq(1.0), 3),
        f(lat.fraction_leq(5.0), 3),
        f(lat.median(), 2),
        f(lat.quantile(0.95), 2),
        rep.data_lookups.to_string(),
        rep.mapping_fetches.to_string(),
    ]);

    println!("{}", table.render());
    println!(
        "shape check: reachable schemas and lookups grow with the TTL while the \
         sub-second fraction falls — interoperability is paid for in sequential \
         mapping-fetch round trips. (The conjunctive row reports mean solution \
         rows instead of mean schemas.)"
    );
}
