//! Before/after microbenchmark for the interned-dictionary / id-index /
//! hash-join refactor of `gridvine-rdf`.
//!
//! The "before" side is a faithful replica of the seed implementation —
//! `String`-keyed position indexes, per-candidate `Binding` unification,
//! and the O(n·m) nested-loop binding join — kept here so the comparison
//! stays reproducible after the real crate moved on. Both sides run the
//! same operations over the same 100k-triple corpus:
//!
//! * `ingest_100k` — bulk insert with index maintenance;
//! * `select_eq` — exact predicate/subject selections;
//! * `select_like_prefix` — `Aspergillus%` object prefix selection;
//! * `conjunctive_join_3` — a 3-pattern conjunctive query (selective
//!   head, two joined fan-out patterns).
//!
//! Writes `BENCH_rdf.json` into the working directory and prints a
//! table.

use gridvine_bench::Table;
use gridvine_rdf::{
    ConjunctiveQuery, PatternTerm, Position, Term, Triple, TriplePattern, TripleStore,
};
use std::time::Instant;

// ---------------------------------------------------------------------
// The seed implementation, replicated as the baseline.
// ---------------------------------------------------------------------
mod seed_baseline {
    use gridvine_rdf::{
        like_match, Binding, ConjunctiveQuery, PatternTerm, Position, Term, Triple, TriplePattern,
    };
    use std::collections::HashMap;

    /// The seed's triple representation: three owned `String`s (the
    /// workspace's `Triple` has since moved to shared `Arc<str>`
    /// buffers, which would flatter the baseline's clone/store costs).
    #[derive(PartialEq, Eq)]
    pub struct SeedTriple {
        subject: String,
        predicate: String,
        object: String,
        object_is_literal: bool,
    }

    impl SeedTriple {
        fn of(t: &Triple) -> SeedTriple {
            SeedTriple {
                subject: t.subject.as_str().to_string(),
                predicate: t.predicate.as_str().to_string(),
                object: t.object.lexical().to_string(),
                object_is_literal: t.object.is_literal(),
            }
        }

        fn lexical(&self, pos: Position) -> &str {
            match pos {
                Position::Subject => &self.subject,
                Position::Predicate => &self.predicate,
                Position::Object => &self.object,
            }
        }

        fn term(&self, pos: Position) -> Term {
            match pos {
                Position::Subject => Term::uri(self.subject.as_str()),
                Position::Predicate => Term::uri(self.predicate.as_str()),
                Position::Object if self.object_is_literal => Term::literal(self.object.as_str()),
                Position::Object => Term::uri(self.object.as_str()),
            }
        }

        /// The seed's `TriplePattern::match_triple`: slot-wise unify,
        /// cloning terms into the binding.
        fn match_pattern(&self, pattern: &TriplePattern) -> Option<Binding> {
            let mut b = Binding::new();
            for pos in Position::ALL {
                let value = self.term(pos);
                match pattern.slot(pos) {
                    PatternTerm::Var(name) => match b.get(name) {
                        Some(bound) => {
                            if bound != &value {
                                return None;
                            }
                        }
                        None => b.bind(name.clone(), value),
                    },
                    PatternTerm::Const(t) => {
                        if let Term::Literal(pat) = t {
                            if pat.contains('%') {
                                if !like_match(value.lexical(), pat) {
                                    return None;
                                }
                                continue;
                            }
                        }
                        if t != &value {
                            return None;
                        }
                    }
                }
            }
            Some(b)
        }
    }

    /// The seed's `TripleStore`: String rows + three String-keyed hash
    /// indexes.
    #[derive(Default)]
    pub struct NaiveStore {
        rows: Vec<SeedTriple>,
        by_subject: HashMap<String, Vec<u32>>,
        by_predicate: HashMap<String, Vec<u32>>,
        by_object: HashMap<String, Vec<u32>>,
        live: usize,
        tombstones: Vec<bool>,
    }

    impl NaiveStore {
        pub fn new() -> NaiveStore {
            NaiveStore::default()
        }

        pub fn len(&self) -> usize {
            self.live
        }

        pub fn insert(&mut self, t: &Triple) -> bool {
            let row = SeedTriple::of(t);
            if self.contains_row(&row) {
                return false;
            }
            let id = self.rows.len() as u32;
            self.by_subject
                .entry(row.subject.clone())
                .or_default()
                .push(id);
            self.by_predicate
                .entry(row.predicate.clone())
                .or_default()
                .push(id);
            self.by_object
                .entry(row.object.clone())
                .or_default()
                .push(id);
            self.rows.push(row);
            self.tombstones.push(false);
            self.live += 1;
            true
        }

        fn contains_row(&self, row: &SeedTriple) -> bool {
            self.by_subject
                .get(&row.subject)
                .map(|ids| {
                    ids.iter()
                        .any(|&id| !self.tombstones[id as usize] && &self.rows[id as usize] == row)
                })
                .unwrap_or(false)
        }

        pub fn iter(&self) -> impl Iterator<Item = &SeedTriple> {
            self.rows
                .iter()
                .zip(&self.tombstones)
                .filter(|(_, dead)| !**dead)
                .map(|(t, _)| t)
        }

        pub fn select_eq(&self, pos: Position, value: &str) -> Vec<&SeedTriple> {
            let index = match pos {
                Position::Subject => &self.by_subject,
                Position::Predicate => &self.by_predicate,
                Position::Object => &self.by_object,
            };
            index
                .get(value)
                .map(|ids| {
                    ids.iter()
                        .filter(|&&id| !self.tombstones[id as usize])
                        .map(|&id| &self.rows[id as usize])
                        .collect()
                })
                .unwrap_or_default()
        }

        pub fn select_like(&self, pos: Position, pattern: &str) -> Vec<&SeedTriple> {
            if !pattern.contains('%') {
                return self.select_eq(pos, pattern);
            }
            self.iter()
                .filter(|t| like_match(t.lexical(pos), pattern))
                .collect()
        }

        pub fn match_pattern(&self, pattern: &TriplePattern) -> Vec<Binding> {
            let exact = pattern
                .constants()
                .into_iter()
                .find(|(_, t)| !(t.is_literal() && t.lexical().contains('%')));
            let candidates: Vec<&SeedTriple> = match exact {
                Some((pos, term)) => self.select_eq(pos, term.lexical()),
                None => self.iter().collect(),
            };
            candidates
                .into_iter()
                .filter_map(|t| t.match_pattern(pattern))
                .collect()
        }

        /// The seed's `ConjunctiveQuery::evaluate`: nested-loop joins.
        pub fn evaluate(&self, q: &ConjunctiveQuery) -> Vec<Binding> {
            let mut partial: Vec<Binding> = vec![Binding::new()];
            for pattern in &q.patterns {
                let matches = self.match_pattern(pattern);
                let mut next = Vec::new();
                for acc in &partial {
                    for m in &matches {
                        if let Some(j) = acc.join(m) {
                            next.push(j);
                        }
                    }
                }
                partial = next;
                if partial.is_empty() {
                    break;
                }
            }
            let vars: Vec<&str> = q.distinguished.iter().map(String::as_str).collect();
            let mut out: Vec<Binding> = partial.into_iter().map(|b| b.project(&vars)).collect();
            out.sort_by_key(|b| format!("{b}"));
            out.dedup();
            out
        }
    }
}

// ---------------------------------------------------------------------
// Corpus and queries
// ---------------------------------------------------------------------

const ENTITIES: usize = 33_334; // ×3 triples ≈ 100k
const SELECTIVE: usize = 64; // Aspergillus matches

/// Realistically-sized RDF: full URIs in the EMBL style the paper quotes
/// (§2.2 uses `http://www.ebi.ac.uk/embl/...` identifiers), not
/// abbreviated CURIEs — term length is what the string-keyed seed paid
/// for on every index insert.
const P_ORGANISM: &str = "http://www.ebi.ac.uk/embl/schema#organismClassification";
const P_LENGTH: &str = "http://www.ebi.ac.uk/embl/schema#sequenceLength";
const P_LAB: &str = "http://www.ebi.ac.uk/embl/schema#submittingLaboratory";

fn subject_uri(i: usize) -> String {
    format!("http://www.ebi.ac.uk/embl/entry#E{i:06}")
}

fn corpus() -> Vec<Triple> {
    let mut triples = Vec::with_capacity(ENTITIES * 3);
    for i in 0..ENTITIES {
        let subject = subject_uri(i);
        let organism = if i < SELECTIVE {
            format!("Aspergillus niger van Tieghem strain {i}")
        } else {
            format!("Escherichia coli str. K-12 substr. MG{i}")
        };
        triples.push(Triple::new(
            subject.as_str(),
            P_ORGANISM,
            Term::literal(organism),
        ));
        triples.push(Triple::new(
            subject.as_str(),
            P_LENGTH,
            Term::literal(format!("{}", 400 + i % 4000)),
        ));
        triples.push(Triple::new(
            subject.as_str(),
            P_LAB,
            Term::uri(format!(
                "http://collab.embl.org/laboratories#L{:03}",
                i % 500
            )),
        ));
    }
    triples
}

fn three_pattern_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec!["x".into(), "len".into(), "lab".into()],
        vec![
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(P_ORGANISM)),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(P_LENGTH)),
                PatternTerm::var("len"),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(P_LAB)),
                PatternTerm::var("lab"),
            ),
        ],
    )
    .expect("valid query")
}

/// Best-of-`reps` wall time of `f`, in nanoseconds, with a result sink
/// so the work cannot be optimized out.
fn best_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = std::hint::black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

struct Measurement {
    name: &'static str,
    baseline_ms: f64,
    new_ms: f64,
}

fn main() {
    let triples = corpus();
    let q = three_pattern_query();
    let mut results: Vec<Measurement> = Vec::new();

    // --- ingest -------------------------------------------------------
    let (base_ns, naive) = best_ns(7, || {
        let mut db = seed_baseline::NaiveStore::new();
        for t in &triples {
            db.insert(t);
        }
        db
    });
    // The producer hands over owned triples (the overlay delivers owned
    // items); cloning the corpus for each rep happens outside the timed
    // region, symmetrically with the baseline's by-ref intake.
    let mut new_ns = f64::INFINITY;
    let mut db = TripleStore::new();
    for _ in 0..7 {
        let batch: Vec<Triple> = triples.clone();
        let start = Instant::now();
        let mut fresh = TripleStore::new();
        fresh.insert_batch(batch);
        let ns = start.elapsed().as_nanos() as f64;
        if ns < new_ns {
            new_ns = ns;
        }
        db = fresh;
    }
    assert_eq!(naive.len(), db.len());
    results.push(Measurement {
        name: "ingest_100k",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // Row-at-a-time ingest for transparency (the distributed system's
    // online Update path inserts one triple per overlay delivery).
    let mut row_ns = f64::INFINITY;
    let mut row_len = 0;
    for _ in 0..7 {
        let batch: Vec<Triple> = triples.clone();
        let start = Instant::now();
        let mut fresh = TripleStore::new();
        for t in batch {
            fresh.insert(t);
        }
        let ns = start.elapsed().as_nanos() as f64;
        if ns < row_ns {
            row_ns = ns;
        }
        row_len = fresh.len();
    }
    assert_eq!(row_len, db.len());
    results.push(Measurement {
        name: "ingest_100k_row_at_a_time",
        baseline_ms: base_ns / 1e6,
        new_ms: row_ns / 1e6,
    });

    // --- select_eq ----------------------------------------------------
    // Point probes: the destination-peer σ of §2.3 — a routed subject
    // constant, interleaved with misses. `select_eq_refs` is the
    // like-for-like comparison: the seed's `select_eq` returned
    // `Vec<&Triple>` (no ownership); the borrowed-view API is its
    // equivalent.
    let (base_ns, base_hits) = best_ns(5, || {
        let mut n = 0;
        for i in (0..ENTITIES).step_by(7) {
            n += naive.select_eq(Position::Subject, &subject_uri(i)).len();
            n += naive.select_eq(Position::Subject, "seq:missing").len();
        }
        n
    });
    let (new_ns, new_hits) = best_ns(5, || {
        let mut n = 0;
        for i in (0..ENTITIES).step_by(7) {
            n += db.select_eq_refs(Position::Subject, &subject_uri(i)).len();
            n += db.select_eq_refs(Position::Subject, "seq:missing").len();
        }
        n
    });
    assert_eq!(base_hits, new_hits);
    results.push(Measurement {
        name: "select_eq_point",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // Scan: the fat predicate posting list (a third of the store).
    let (base_ns, base_hits) =
        best_ns(5, || naive.select_eq(Position::Predicate, P_ORGANISM).len());
    let (new_ns, new_hits) = best_ns(5, || {
        db.select_eq_refs(Position::Predicate, P_ORGANISM).len()
    });
    assert_eq!(base_hits, new_hits);
    results.push(Measurement {
        name: "select_eq_scan",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // --- select_like prefix -------------------------------------------
    let (base_ns, base_hits) = best_ns(5, || {
        naive.select_like(Position::Object, "Aspergillus%").len()
    });
    let (new_ns, new_hits) = best_ns(5, || db.select_like(Position::Object, "Aspergillus%").len());
    assert_eq!(base_hits, new_hits);
    assert_eq!(new_hits, SELECTIVE);
    results.push(Measurement {
        name: "select_like_prefix",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // --- 3-pattern conjunctive join -----------------------------------
    let (base_ns, base_rows) = best_ns(5, || naive.evaluate(&q).len());
    let (new_ns, new_rows) = best_ns(5, || q.evaluate(&db).len());
    assert_eq!(base_rows, new_rows);
    assert_eq!(new_rows, SELECTIVE);
    results.push(Measurement {
        name: "conjunctive_join_3",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // --- report -------------------------------------------------------
    println!("BENCH rdf: seed baseline vs interned/id/hash-join store (100k triples)");
    let mut table = Table::new(&["operation", "seed_ms", "new_ms", "speedup"]);
    for m in &results {
        table.row(&[
            m.name.to_string(),
            format!("{:.2}", m.baseline_ms),
            format!("{:.2}", m.new_ms),
            format!("{:.1}x", m.baseline_ms / m.new_ms),
        ]);
    }
    print!("{}", table.render());

    let mut json = String::from("{\n  \"triples\": 100002,\n  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"seed_ms\": {:.3}, \"new_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.baseline_ms,
            m.new_ms,
            m.baseline_ms / m.new_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_rdf.json", &json).expect("write BENCH_rdf.json");
    println!("\nwrote BENCH_rdf.json");
}
