//! Before/after microbenchmark for the columnar/interned/hash-join
//! refactors of `gridvine-rdf`.
//!
//! The "before" side is a faithful replica of the seed implementation —
//! `String`-keyed position indexes, per-candidate `Binding` unification,
//! and the O(n·m) nested-loop binding join — kept here so the comparison
//! stays reproducible after the real crate moved on. Both sides run the
//! same operations over the same 100k-triple corpus:
//!
//! * `ingest_100k` — bulk insert with index maintenance;
//! * `select_eq_point` / `select_eq_scan` — exact selections via the
//!   row-cursor API (row ids collected, terms deferred — the like-for-
//!   like of the seed's `Vec<&Triple>`);
//! * `select_eq_cursor` — the zone-mapped columnar scan path (sorted
//!   runs, no posting list);
//! * `select_eq_materialize` — the same selection eagerly resolved to
//!   owned `Triple`s, the wire format a destination peer ships: the
//!   seed clones three `String`s per row, the new side bumps three
//!   `Arc<str>`s through the granule-batched dictionary gather;
//! * `select_eq_granules` — ablation: the same fat posting pulled one
//!   row at a time vs drained in ≤256-row granule batches
//!   (`RowCursor::next_block`);
//! * `scan_full` — analytics over every live row's object, answered by
//!   the run projection's group walk (`count_where`: one dictionary
//!   resolve per *distinct* run-local term);
//! * `scan_full_projected` — ablation: the same count through the
//!   row-at-a-time cursor + per-row dictionary walk (the pre-projection
//!   path) vs the group walk;
//! * `select_like_prefix` — `Aspergillus%` object prefix selection;
//! * `conjunctive_join_3` — a 3-pattern conjunctive query (selective
//!   head, two joined fan-out patterns);
//! * `merge_join_runs` — ablation: two run-resident fat patterns
//!   joined on their shared subject via the hash join (build + probe)
//!   vs the build-free sort-merge join;
//! * `parallel_ingest_8way` — 8 threads ingesting 8 corpus partitions
//!   into 8 peer stores through one shared dictionary handle: 8-way
//!   sharded locks ("new") vs a single global lock ("seed" column);
//!   both pools gate their shard count on the host's available
//!   parallelism, so on a single-core container the comparison
//!   degenerates to ~1.0× by construction (no contention to eliminate).
//! * `exec_first_result` / `exec_limit_10` — the pull-based query
//!   session over a full synchronous PDMS federation (8-schema mapping
//!   chain): the "seed" column is the blocking `execute` drain of the
//!   whole reformulation closure, the "new" column is pulling the
//!   session only until the first row batch lands (first-result
//!   latency) or running with `limit(10)` (early-termination savings).
//! * `exec_overlap_first_result` — **simulated-clock** first-result
//!   latency of the event-driven session scheduler over an 8-schema
//!   star federation whose matching data lives in the schemas the
//!   serial walk reaches last: the "seed" column is `window(1)` (one
//!   subquery in flight, PR 4's serial pull order), the "new" column
//!   `window(4)` (independent closure hops pipelined). Both columns
//!   are simulated milliseconds, deterministic per seed, and identical
//!   in rows and message counts — only the clock moves.
//! * `exec_load_p99` — **simulated-clock** p99 completion latency of an
//!   open-loop session stream through the concurrent-session
//!   multiplexer at two arrival rates: the "seed" column submits at
//!   32× the rate of the "new" column against an 8-slot admission cap,
//!   so arrivals stack up in the bounded wait queue and the tail
//!   absorbs the backlog. Both columns are simulated milliseconds from
//!   real per-session completion instants; the row pins the
//!   latency-under-load measurement end to end.
//! * `exec_failover_p99` — **simulated-clock** p99 session latency
//!   over a federation whose chain predicates carry a factor-3
//!   replication rule: the "seed" column runs with the first-ranked
//!   replica holder crashed (every data resolution fails over to the
//!   next live replica), the "new" column fault-free. Both columns
//!   deliver identical rows with zero failures — the gap is the
//!   failover surcharge.
//!
//! Writes `BENCH_rdf.json` into the working directory and prints a
//! table. `--quick` runs a reduced corpus as a CI smoke check (no JSON
//! rewrite), catching layout regressions without full benchmark time.

use gridvine_bench::Table;
use gridvine_core::{
    GridVineConfig, GridVineSystem, PlacementPolicy, QueryOptions, QueryPlan, ResultEvent, Strategy,
};
use gridvine_load::{run_open_loop, ArrivalProcess, LoadConfig};
use gridvine_netsim::{Cdf, SimDuration};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{
    ConjunctiveQuery, PatternTerm, Position, SharedTermDict, Term, Triple, TriplePattern,
    TriplePatternQuery, TripleStore,
};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
use std::time::Instant;

// ---------------------------------------------------------------------
// The seed implementation, replicated as the baseline.
// ---------------------------------------------------------------------
mod seed_baseline {
    use gridvine_rdf::{
        like_match, Binding, ConjunctiveQuery, PatternTerm, Position, Term, Triple, TriplePattern,
    };
    use std::collections::HashMap;

    /// The seed's triple representation: three owned `String`s (the
    /// workspace's `Triple` has since moved to shared `Arc<str>`
    /// buffers, which would flatter the baseline's clone/store costs).
    #[derive(PartialEq, Eq)]
    pub struct SeedTriple {
        subject: String,
        predicate: String,
        object: String,
        object_is_literal: bool,
    }

    impl SeedTriple {
        fn of(t: &Triple) -> SeedTriple {
            SeedTriple {
                subject: t.subject.as_str().to_string(),
                predicate: t.predicate.as_str().to_string(),
                object: t.object.lexical().to_string(),
                object_is_literal: t.object.is_literal(),
            }
        }

        pub fn object(&self) -> &str {
            &self.object
        }

        /// Materialize to the workspace's owned wire-format `Triple`
        /// (what a destination peer ships): three buffer copies.
        pub fn to_triple(&self) -> Triple {
            let object = if self.object_is_literal {
                Term::literal(self.object.as_str())
            } else {
                Term::uri(self.object.as_str())
            };
            Triple::new(self.subject.as_str(), self.predicate.as_str(), object)
        }

        fn lexical(&self, pos: Position) -> &str {
            match pos {
                Position::Subject => &self.subject,
                Position::Predicate => &self.predicate,
                Position::Object => &self.object,
            }
        }

        fn term(&self, pos: Position) -> Term {
            match pos {
                Position::Subject => Term::uri(self.subject.as_str()),
                Position::Predicate => Term::uri(self.predicate.as_str()),
                Position::Object if self.object_is_literal => Term::literal(self.object.as_str()),
                Position::Object => Term::uri(self.object.as_str()),
            }
        }

        /// The seed's `TriplePattern::match_triple`: slot-wise unify,
        /// cloning terms into the binding.
        fn match_pattern(&self, pattern: &TriplePattern) -> Option<Binding> {
            let mut b = Binding::new();
            for pos in Position::ALL {
                let value = self.term(pos);
                match pattern.slot(pos) {
                    PatternTerm::Var(name) => match b.get(name) {
                        Some(bound) => {
                            if bound != &value {
                                return None;
                            }
                        }
                        None => b.bind(name.clone(), value),
                    },
                    PatternTerm::Const(t) => {
                        if let Term::Literal(pat) = t {
                            if pat.contains('%') {
                                if !like_match(value.lexical(), pat) {
                                    return None;
                                }
                                continue;
                            }
                        }
                        if t != &value {
                            return None;
                        }
                    }
                }
            }
            Some(b)
        }
    }

    /// The seed's `TripleStore`: String rows + three String-keyed hash
    /// indexes.
    #[derive(Default)]
    pub struct NaiveStore {
        rows: Vec<SeedTriple>,
        by_subject: HashMap<String, Vec<u32>>,
        by_predicate: HashMap<String, Vec<u32>>,
        by_object: HashMap<String, Vec<u32>>,
        live: usize,
        tombstones: Vec<bool>,
    }

    impl NaiveStore {
        pub fn new() -> NaiveStore {
            NaiveStore::default()
        }

        pub fn len(&self) -> usize {
            self.live
        }

        pub fn insert(&mut self, t: &Triple) -> bool {
            let row = SeedTriple::of(t);
            if self.contains_row(&row) {
                return false;
            }
            let id = self.rows.len() as u32;
            self.by_subject
                .entry(row.subject.clone())
                .or_default()
                .push(id);
            self.by_predicate
                .entry(row.predicate.clone())
                .or_default()
                .push(id);
            self.by_object
                .entry(row.object.clone())
                .or_default()
                .push(id);
            self.rows.push(row);
            self.tombstones.push(false);
            self.live += 1;
            true
        }

        fn contains_row(&self, row: &SeedTriple) -> bool {
            self.by_subject
                .get(&row.subject)
                .map(|ids| {
                    ids.iter()
                        .any(|&id| !self.tombstones[id as usize] && &self.rows[id as usize] == row)
                })
                .unwrap_or(false)
        }

        pub fn iter(&self) -> impl Iterator<Item = &SeedTriple> {
            self.rows
                .iter()
                .zip(&self.tombstones)
                .filter(|(_, dead)| !**dead)
                .map(|(t, _)| t)
        }

        pub fn select_eq(&self, pos: Position, value: &str) -> Vec<&SeedTriple> {
            let index = match pos {
                Position::Subject => &self.by_subject,
                Position::Predicate => &self.by_predicate,
                Position::Object => &self.by_object,
            };
            index
                .get(value)
                .map(|ids| {
                    ids.iter()
                        .filter(|&&id| !self.tombstones[id as usize])
                        .map(|&id| &self.rows[id as usize])
                        .collect()
                })
                .unwrap_or_default()
        }

        pub fn select_like(&self, pos: Position, pattern: &str) -> Vec<&SeedTriple> {
            if !pattern.contains('%') {
                return self.select_eq(pos, pattern);
            }
            self.iter()
                .filter(|t| like_match(t.lexical(pos), pattern))
                .collect()
        }

        pub fn match_pattern(&self, pattern: &TriplePattern) -> Vec<Binding> {
            let exact = pattern
                .constants()
                .into_iter()
                .find(|(_, t)| !(t.is_literal() && t.lexical().contains('%')));
            let candidates: Vec<&SeedTriple> = match exact {
                Some((pos, term)) => self.select_eq(pos, term.lexical()),
                None => self.iter().collect(),
            };
            candidates
                .into_iter()
                .filter_map(|t| t.match_pattern(pattern))
                .collect()
        }

        /// The seed's `ConjunctiveQuery::evaluate`: nested-loop joins.
        pub fn evaluate(&self, q: &ConjunctiveQuery) -> Vec<Binding> {
            let mut partial: Vec<Binding> = vec![Binding::new()];
            for pattern in &q.patterns {
                let matches = self.match_pattern(pattern);
                let mut next = Vec::new();
                for acc in &partial {
                    for m in &matches {
                        if let Some(j) = acc.join(m) {
                            next.push(j);
                        }
                    }
                }
                partial = next;
                if partial.is_empty() {
                    break;
                }
            }
            let vars: Vec<&str> = q.distinguished.iter().map(String::as_str).collect();
            let mut out: Vec<Binding> = partial.into_iter().map(|b| b.project(&vars)).collect();
            out.sort_by_key(|b| format!("{b}"));
            out.dedup();
            out
        }
    }
}

// ---------------------------------------------------------------------
// Corpus and queries
// ---------------------------------------------------------------------

const ENTITIES: usize = 33_334; // ×3 triples ≈ 100k
const QUICK_ENTITIES: usize = 3_334; // ×3 ≈ 10k for the CI smoke run
const SELECTIVE: usize = 64; // Aspergillus matches

/// Realistically-sized RDF: full URIs in the EMBL style the paper quotes
/// (§2.2 uses `http://www.ebi.ac.uk/embl/...` identifiers), not
/// abbreviated CURIEs — term length is what the string-keyed seed paid
/// for on every index insert.
const P_ORGANISM: &str = "http://www.ebi.ac.uk/embl/schema#organismClassification";
const P_LENGTH: &str = "http://www.ebi.ac.uk/embl/schema#sequenceLength";
const P_LAB: &str = "http://www.ebi.ac.uk/embl/schema#submittingLaboratory";

fn subject_uri(i: usize) -> String {
    format!("http://www.ebi.ac.uk/embl/entry#E{i:06}")
}

fn corpus(entities: usize) -> Vec<Triple> {
    let mut triples = Vec::with_capacity(entities * 3);
    for i in 0..entities {
        let subject = subject_uri(i);
        let organism = if i < SELECTIVE {
            format!("Aspergillus niger van Tieghem strain {i}")
        } else {
            format!("Escherichia coli str. K-12 substr. MG{i}")
        };
        triples.push(Triple::new(
            subject.as_str(),
            P_ORGANISM,
            Term::literal(organism),
        ));
        triples.push(Triple::new(
            subject.as_str(),
            P_LENGTH,
            Term::literal(format!("{}", 400 + i % 4000)),
        ));
        triples.push(Triple::new(
            subject.as_str(),
            P_LAB,
            Term::uri(format!(
                "http://collab.embl.org/laboratories#L{:03}",
                i % 500
            )),
        ));
    }
    triples
}

fn three_pattern_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec!["x".into(), "len".into(), "lab".into()],
        vec![
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(P_ORGANISM)),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(P_LENGTH)),
                PatternTerm::var("len"),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(P_LAB)),
                PatternTerm::var("lab"),
            ),
        ],
    )
    .expect("valid query")
}

/// Best-of-`reps` wall time of `f`, in nanoseconds, with a result sink
/// so the work cannot be optimized out.
fn best_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = std::hint::black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

struct Measurement {
    name: &'static str,
    baseline_ms: f64,
    new_ms: f64,
}

/// 8 threads ingest 8 corpus partitions into 8 peer stores, all
/// canonicalizing lexicals through one shared dictionary handle with
/// `shards` lock shards. Returns best-of-`reps` wall nanoseconds.
fn parallel_ingest_8way(triples: &[Triple], shards: usize, reps: usize) -> f64 {
    let parts: Vec<&[Triple]> = triples.chunks(triples.len().div_ceil(8)).collect();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let lexicon = SharedTermDict::with_shards(shards);
        let start = Instant::now();
        let total: usize = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| {
                    let lexicon = &lexicon;
                    s.spawn(move || {
                        let mut db = TripleStore::new();
                        db.insert_batch(part.iter().map(|t| lexicon.canonical_triple(t)));
                        db.len()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(std::hint::black_box(total), triples.len());
        if ns < best {
            best = ns;
        }
    }
    best
}

/// A synchronous PDMS federation for the session ops: an 8-schema
/// equivalence chain with `entities` Aspergillus records spread evenly,
/// plus the S0-vocabulary query whose closure reaches every schema.
/// `placement` is the null policy for the placement-free measurements
/// (bit-identical to the pre-placement scheduler) and a replication
/// rule for the failover row.
fn session_federation(
    entities: usize,
    placement: PlacementPolicy,
) -> (GridVineSystem, TriplePatternQuery) {
    const SCHEMAS: usize = 8;
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        placement,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..SCHEMAS {
        sys.insert_schema(
            p0,
            Schema::new(format!("S{i}").as_str(), [format!("organism{i}")]),
        )
        .expect("schema stored");
    }
    for i in 0..SCHEMAS - 1 {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(
                format!("organism{i}"),
                format!("organism{}", i + 1),
            )],
        )
        .expect("mapping stored");
    }
    for e in 0..entities {
        let s = e % SCHEMAS;
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:E{e:05}").as_str(),
                format!("S{s}#organism{s}").as_str(),
                Term::literal(format!("Aspergillus sp. strain {e}")),
            ),
        )
        .expect("triple stored");
    }
    let q = TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#organism0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .expect("valid query");
    (sys, q)
}

/// The pull-based session ops: full drain (baseline) vs first-result
/// pull and `limit(10)` early termination. Steady state: after the
/// first rep the closure cache is warm on every path, so best-of-reps
/// compares warm against warm.
fn exec_session_ops(quick: bool, results: &mut Vec<Measurement>) {
    let entities = if quick { 200 } else { 800 };
    let reps = if quick { 3 } else { 7 };
    let (mut sys, q) = session_federation(entities, PlacementPolicy::default());
    let plan = QueryPlan::search(q);
    let options = QueryOptions::new().strategy(Strategy::Iterative);
    let origin = PeerId(17);

    let (full_ns, full_rows) = best_ns(reps, || {
        sys.execute(origin, &plan, &options)
            .expect("runs")
            .rows
            .len()
    });
    assert_eq!(full_rows, entities, "the closure reaches every schema");

    let (first_ns, first_batch) = best_ns(reps, || {
        let mut session = sys.open(origin, &plan, &options).expect("opens");
        loop {
            match session.next_event().expect("advances") {
                Some(ResultEvent::Rows(batch)) => break batch.len(),
                Some(_) => continue,
                None => break 0,
            }
        }
    });
    assert!(first_batch > 0, "first pull batch is non-empty");
    results.push(Measurement {
        name: "exec_first_result",
        baseline_ms: full_ns / 1e6,
        new_ms: first_ns / 1e6,
    });

    let (limit_ns, limit_rows) = best_ns(reps, || {
        sys.execute(origin, &plan, &options.limit(10))
            .expect("runs")
            .rows
            .len()
    });
    assert_eq!(limit_rows, 10);
    results.push(Measurement {
        name: "exec_limit_10",
        baseline_ms: full_ns / 1e6,
        new_ms: limit_ns / 1e6,
    });
}

/// A star federation for the scheduler-overlap measurement: S0 maps
/// directly to each of S1..=S7, but matching data lives only in
/// S1..=S3 — the children the serial depth-first walk visits *last* —
/// so a `window(1)` session resolves the whole empty fan-out before
/// its first row, while a wider window pipelines the independent hops
/// and reaches the data several simulated round-trips earlier.
fn overlap_federation(entities: usize) -> (GridVineSystem, TriplePatternQuery) {
    const SCHEMAS: usize = 8;
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..SCHEMAS {
        sys.insert_schema(
            p0,
            Schema::new(format!("S{i}").as_str(), [format!("organism{i}")]),
        )
        .expect("schema stored");
    }
    for i in 1..SCHEMAS {
        sys.insert_mapping(
            p0,
            "S0",
            format!("S{i}").as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(
                "organism0".to_string(),
                format!("organism{i}"),
            )],
        )
        .expect("mapping stored");
    }
    for e in 0..entities {
        let s = 1 + e % 3; // data only in S1..=S3
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:E{e:05}").as_str(),
                format!("S{s}#organism{s}").as_str(),
                Term::literal(format!("Aspergillus sp. strain {e}")),
            ),
        )
        .expect("triple stored");
    }
    let q = TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#organism0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .expect("valid query");
    (sys, q)
}

/// Simulated-clock first-result latency, `window(1)` vs `window(4)`.
/// Cold sessions on identically-seeded fresh systems; the simulated
/// clock is deterministic, so one run per window is exact.
fn exec_overlap_ops(quick: bool, results: &mut Vec<Measurement>) {
    let entities = if quick { 60 } else { 240 };
    let run = |w: usize| {
        let (mut sys, q) = overlap_federation(entities);
        let plan = QueryPlan::search(q);
        let options = QueryOptions::new().strategy(Strategy::Iterative).window(w);
        let mut session = sys.open(PeerId(17), &plan, &options).expect("opens");
        let mut elapsed_ms = None;
        while let Some(ev) = session.next_event().expect("advances") {
            if elapsed_ms.is_none() {
                if let ResultEvent::Rows(batch) = &ev {
                    if !batch.is_empty() {
                        elapsed_ms = Some(session.sim_elapsed().as_micros() as f64 / 1e3);
                    }
                }
            }
        }
        let total = session.into_outcome();
        (
            total.stats.messages,
            elapsed_ms.expect("the federation has matching rows"),
        )
    };
    let (serial_msgs, serial_ms) = run(1);
    let (overlap_msgs, overlap_ms) = run(4);
    // Equivalence: the window moves the clock, never the computation.
    assert_eq!(serial_msgs, overlap_msgs, "identical drained messages");
    assert!(
        overlap_ms * 2.0 <= serial_ms,
        "window(4) must reach the first row ≥2× sooner on the simulated \
         clock: {overlap_ms:.3}ms vs {serial_ms:.3}ms"
    );
    results.push(Measurement {
        name: "exec_overlap_first_result",
        baseline_ms: serial_ms,
        new_ms: overlap_ms,
    });
}

/// Simulated-clock p99 completion latency under open-loop load: the
/// same session stream against the chain federation at two arrival
/// rates. Every session gets its own origin (cold closure caches, so
/// service time is uniform) and the gap between arrivals is derived
/// from the deterministic single-session service time: the light rate
/// never fills the 8-slot admission cap, the heavy rate offers 4× what
/// the pool can drain — the p99 difference is pure wait-queue delay on
/// the simulated clock, measured from submission to final reply.
fn exec_load_ops(quick: bool, results: &mut Vec<Measurement>) {
    let entities = if quick { 40 } else { 80 };
    let sessions = if quick { 24 } else { 56 }; // < peers: one origin each
                                                // One standalone session's simulated makespan = the service time.
    let service = {
        let (mut sys, q) = session_federation(entities, PlacementPolicy::default());
        let plan = QueryPlan::search(q);
        let options = QueryOptions::new().strategy(Strategy::Iterative).window(4);
        let mut session = sys.open(PeerId(0), &plan, &options).expect("opens");
        while session.next_event().expect("advances").is_some() {}
        session.sim_elapsed()
    };
    assert!(service > SimDuration::ZERO);

    let run = |gap: SimDuration| {
        let (mut sys, q) = session_federation(entities, PlacementPolicy::default());
        let plans = vec![QueryPlan::search(q)];
        let cfg = LoadConfig {
            sessions,
            arrivals: ArrivalProcess::Deterministic { gap },
            origins: sessions,
            max_concurrent: 8,
            queue_capacity: sessions,
            seed: 0x0431,
            ..LoadConfig::default()
        };
        let r = run_open_loop(&mut sys, &plans, &cfg);
        assert_eq!(r.completed, sessions, "every admitted session completes");
        r.latency.p99.as_micros() as f64 / 1e3
    };
    // Against the 8-slot admission cap, gap = service admits every
    // arrival into a near-empty pool, while gap = service/32 offers 4×
    // the drain rate — arrivals stack up in the wait queue and the
    // completion latency absorbs the backlog.
    let loaded_ms = run(SimDuration::from_micros(service.as_micros() / 32));
    let light_ms = run(service);
    assert!(
        loaded_ms >= light_ms * 2.0,
        "a 4x-overloaded pool must at least double the p99: \
         {loaded_ms:.3}ms vs {light_ms:.3}ms"
    );
    results.push(Measurement {
        name: "exec_load_p99",
        baseline_ms: loaded_ms,
        new_ms: light_ms,
    });
}

/// Simulated-clock p99 session latency with a crashed primary replica
/// holder ("seed" column) vs fault-free ("new" column). A factor-3
/// placement rule covers every chain predicate, so data resolutions
/// take the replica-aware routing path; the victim is the first-ranked
/// holder (lowest index — the flat model's serving order), which never
/// owns a schema key here, so mediation discovery stays fault-free.
/// Each session issues cold from its own non-holder origin; the crash
/// converts every data resolution into a failover but sheds nothing —
/// both columns deliver identical rows with zero failures, and the p99
/// gap is the failover surcharge on the simulated clock.
fn exec_failover_ops(quick: bool, results: &mut Vec<Measurement>) {
    const SCHEMAS: usize = 8;
    let entities = if quick { 40 } else { 80 };
    let sessions = if quick { 16 } else { 40 };
    let policy = PlacementPolicy::new().replicate("S", 3);

    let run = |crash_primary: bool| {
        let (mut sys, q) = session_federation(entities, policy.clone());
        let plan = QueryPlan::search(q);
        // window(1): every unit sits on the critical path, so the
        // failed-attempt message of each failover lands on the clock
        // instead of hiding inside the pipelined window's slack.
        let options = QueryOptions::new().strategy(Strategy::Iterative).window(1);
        let schema_owners: Vec<PeerId> = (0..SCHEMAS)
            .flat_map(|i| sys.replica_holders(&format!("S{i}")))
            .collect();
        let holders = sys.replica_holders("S0#organism0");
        if crash_primary {
            let victim = *holders.iter().min_by_key(|p| p.0).expect("holders");
            assert!(
                !schema_owners.contains(&victim),
                "the primary data holder must not own a schema key"
            );
            sys.crash_peer(victim);
        }
        let mut origins = (0..64u32)
            .map(PeerId)
            .filter(|p| !holders.contains(p) && !schema_owners.contains(p));
        let mut lat = Cdf::new();
        let mut rows = 0usize;
        let mut failures = 0usize;
        for _ in 0..sessions {
            let origin = origins.next().expect("enough non-holder origins");
            let mut session = sys.open(origin, &plan, &options).expect("opens");
            while let Some(ev) = session.next_event().expect("advances") {
                if let ResultEvent::Rows(batch) = ev {
                    rows += batch.len();
                }
            }
            lat.record_duration(session.sim_elapsed());
            failures += session.into_outcome().stats.failures;
        }
        assert_eq!(failures, 0, "failover leaves zero failures");
        (
            lat.quantile(0.99) * 1e3,
            rows,
            sys.replica_counters().failovers,
        )
    };
    let (clean_ms, clean_rows, clean_failovers) = run(false);
    let (crashed_ms, crashed_rows, crashed_failovers) = run(true);
    assert_eq!(
        clean_rows,
        entities * sessions,
        "the closure delivers fully"
    );
    assert_eq!(
        crashed_rows, clean_rows,
        "failover keeps the rows identical"
    );
    assert_eq!(clean_failovers, 0);
    assert!(
        crashed_failovers > 0,
        "the crashed primary forces failovers"
    );
    assert!(
        crashed_ms >= clean_ms,
        "failover cannot make the tail faster: {crashed_ms:.3}ms vs {clean_ms:.3}ms"
    );
    results.push(Measurement {
        name: "exec_failover_p99",
        baseline_ms: crashed_ms,
        new_ms: clean_ms,
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let entities = if quick { QUICK_ENTITIES } else { ENTITIES };
    let triples = corpus(entities);
    let q = three_pattern_query();
    let mut results: Vec<Measurement> = Vec::new();

    // --- ingest -------------------------------------------------------
    let (base_ns, naive) = best_ns(7, || {
        let mut db = seed_baseline::NaiveStore::new();
        for t in &triples {
            db.insert(t);
        }
        db
    });
    // The producer hands over owned triples (the overlay delivers owned
    // items); cloning the corpus for each rep happens outside the timed
    // region, symmetrically with the baseline's by-ref intake.
    let mut new_ns = f64::INFINITY;
    let mut db = TripleStore::new();
    for _ in 0..7 {
        let batch: Vec<Triple> = triples.clone();
        let start = Instant::now();
        let mut fresh = TripleStore::new();
        fresh.insert_batch(batch);
        let ns = start.elapsed().as_nanos() as f64;
        if ns < new_ns {
            new_ns = ns;
        }
        db = fresh;
    }
    assert_eq!(naive.len(), db.len());
    results.push(Measurement {
        name: "ingest_100k",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // Row-at-a-time ingest for transparency (the distributed system's
    // online Update path inserts one triple per overlay delivery).
    let mut row_ns = f64::INFINITY;
    let mut row_len = 0;
    for _ in 0..7 {
        let batch: Vec<Triple> = triples.clone();
        let start = Instant::now();
        let mut fresh = TripleStore::new();
        for t in batch {
            fresh.insert(t);
        }
        let ns = start.elapsed().as_nanos() as f64;
        if ns < row_ns {
            row_ns = ns;
        }
        row_len = fresh.len();
    }
    assert_eq!(row_len, db.len());
    results.push(Measurement {
        name: "ingest_100k_row_at_a_time",
        baseline_ms: base_ns / 1e6,
        new_ms: row_ns / 1e6,
    });

    // --- select_eq ----------------------------------------------------
    // Point probes: the destination-peer σ of §2.3 — a routed subject
    // constant, interleaved with misses, asked as a cardinality
    // ("how many rows claim this subject?"). The seed must allocate and
    // fill a `Vec<&Triple>` to answer; the cursor answers from the
    // posting list's length (O(1) on a tombstone-free store) — the
    // deferral is the optimization. The other cost profiles of the
    // same selection are measured separately: handle collection in
    // `select_eq_scan`/`select_eq_cursor`, eager term materialization
    // in `select_eq_materialize`.
    let probes: Vec<String> = (0..entities).step_by(7).map(subject_uri).collect();
    let (base_ns, base_hits) = best_ns(15, || {
        let mut n = 0;
        for p in &probes {
            n += naive.select_eq(Position::Subject, p).len();
            n += naive.select_eq(Position::Subject, "seq:missing").len();
        }
        n
    });
    let (new_ns, new_hits) = best_ns(15, || {
        let mut n = 0;
        for p in &probes {
            n += db.select_eq_rows(Position::Subject, p).count();
            n += db.select_eq_rows(Position::Subject, "seq:missing").count();
        }
        n
    });
    assert_eq!(base_hits, new_hits);
    results.push(Measurement {
        name: "select_eq_point",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // Scan: the fat predicate posting list (a third of the store),
    // again collected as row-id handles on the cursor side.
    let (base_ns, base_hits) = best_ns(15, || {
        naive.select_eq(Position::Predicate, P_ORGANISM).len()
    });
    let (new_ns, new_hits) = best_ns(15, || {
        db.select_eq_rows(Position::Predicate, P_ORGANISM)
            .into_vec()
            .len()
    });
    assert_eq!(base_hits, new_hits);
    results.push(Measurement {
        name: "select_eq_scan",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // The same fat-predicate selection through the zone-mapped sorted
    // runs (granule pruning + in-run equal ranges, no posting list) —
    // the scan-analytics access path.
    let (new_ns, cursor_hits) = best_ns(15, || {
        db.scan_eq_rows(Position::Predicate, P_ORGANISM)
            .into_vec()
            .len()
    });
    assert_eq!(base_hits, cursor_hits);
    results.push(Measurement {
        name: "select_eq_cursor",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // Eager materialization of the same fat selection to the owned
    // wire format a destination peer ships (one `Triple` per hit):
    // the seed copies three `String` buffers per row, the new side
    // bumps three `Arc<str>` refcounts through the granule-batched
    // dictionary gather (`triples_vec`). Kept in the suite so the
    // cost of dereferencing through the dictionary stays visible and
    // guarded, separate from the deferred-handle paths.
    let (mat_base_ns, mat_base_hits) = best_ns(15, || {
        let owned: Vec<Triple> = naive
            .select_eq(Position::Predicate, P_ORGANISM)
            .into_iter()
            .map(|t| t.to_triple())
            .collect();
        owned.len()
    });
    let (new_ns, mat_hits) = best_ns(15, || {
        db.select_eq_rows(Position::Predicate, P_ORGANISM)
            .triples_vec()
            .len()
    });
    assert_eq!(mat_base_hits, mat_hits);
    results.push(Measurement {
        name: "select_eq_materialize",
        baseline_ms: mat_base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // Granule-batched cursor consumption: the same fat posting pulled
    // one row at a time ("seed" column) vs drained in ≤256-row batches
    // via `next_block` — the block-at-a-time read every batch consumer
    // (gathers, residual filters) sits on.
    let (row_ns, row_hits) = best_ns(15, || {
        let mut n = 0usize;
        for _ in db.select_eq_rows(Position::Predicate, P_ORGANISM) {
            n += 1;
        }
        n
    });
    let (blk_ns, blk_hits) = best_ns(15, || {
        let mut c = db.select_eq_rows(Position::Predicate, P_ORGANISM);
        let mut buf = Vec::new();
        let mut n = 0usize;
        while c.next_block(&mut buf) {
            n += buf.len();
        }
        n
    });
    assert_eq!(row_hits, blk_hits);
    assert_eq!(blk_hits, base_hits);
    results.push(Measurement {
        name: "select_eq_granules",
        baseline_ms: row_ns / 1e6,
        new_ms: blk_ns / 1e6,
    });

    // --- full scan ----------------------------------------------------
    // Analytics over one position: classify every live row's object
    // content. The seed walks 100k scattered heap `String`s and runs
    // the predicate on each; the columnar side walks the sealed runs'
    // key projections group-at-a-time (`count_where`), paying one
    // dictionary resolve per *distinct* term plus a short log sweep.
    let (base_ns, base_sum) = best_ns(5, || {
        naive
            .iter()
            .filter(|t| t.object().starts_with("Aspergillus"))
            .count()
    });
    let (new_ns, new_sum) = best_ns(5, || {
        db.count_where(Position::Object, |o| o.starts_with("Aspergillus"))
    });
    assert_eq!(base_sum, new_sum);
    assert_eq!(new_sum, SELECTIVE);
    results.push(Measurement {
        name: "scan_full",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // Ablation for the same count: the row-at-a-time cursor walk
    // resolving every object through the dictionary ("seed" column —
    // exactly what scan_full measured before the run projection
    // landed) vs the projection group walk.
    let (row_ns, row_sum) = best_ns(5, || {
        db.rows()
            .filter(|&id| db.term_at(id, Position::Object).starts_with("Aspergillus"))
            .count()
    });
    assert_eq!(row_sum, SELECTIVE);
    results.push(Measurement {
        name: "scan_full_projected",
        baseline_ms: row_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // --- select_like prefix -------------------------------------------
    let (base_ns, base_hits) = best_ns(5, || {
        naive.select_like(Position::Object, "Aspergillus%").len()
    });
    let (new_ns, new_hits) = best_ns(5, || db.select_like(Position::Object, "Aspergillus%").len());
    assert_eq!(base_hits, new_hits);
    assert_eq!(new_hits, SELECTIVE);
    results.push(Measurement {
        name: "select_like_prefix",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // --- 3-pattern conjunctive join -----------------------------------
    let (base_ns, base_rows) = best_ns(5, || naive.evaluate(&q).len());
    let (new_ns, new_rows) = best_ns(5, || q.evaluate(&db).len());
    assert_eq!(base_rows, new_rows);
    assert_eq!(new_rows, SELECTIVE);
    results.push(Measurement {
        name: "conjunctive_join_3",
        baseline_ms: base_ns / 1e6,
        new_ms: new_ns / 1e6,
    });

    // --- sort-merge join over run-resident sides ----------------------
    // Ablation: every entity's length and lab rows (two fat patterns,
    // one shared subject variable, both sides living in sealed runs)
    // joined through the hash join ("seed" column — build a table over
    // one side, probe with the other) vs the sort-merge path (two
    // stable sorts + a linear equal-key merge, no table).
    let jl = TriplePattern::new(
        PatternTerm::var("x"),
        PatternTerm::constant(Term::uri(P_LENGTH)),
        PatternTerm::var("len"),
    );
    let jr = TriplePattern::new(
        PatternTerm::var("x"),
        PatternTerm::constant(Term::uri(P_LAB)),
        PatternTerm::var("lab"),
    );
    let (hash_ns, hash_rows) = best_ns(5, || db.join_codes(&jl, &jr).len());
    let (merge_ns, merge_rows) = best_ns(5, || db.merge_join_codes(&jl, &jr).len());
    assert_eq!(hash_rows, merge_rows);
    assert_eq!(merge_rows, entities);
    results.push(Measurement {
        name: "merge_join_runs",
        baseline_ms: hash_ns / 1e6,
        new_ms: merge_ns / 1e6,
    });

    // --- 8-way parallel ingest through a shared dictionary ------------
    // The dictionary-sharding ablation: same 8 threads, same 8 peer
    // stores, same pooled-lexicon canonicalization; the baseline pool
    // has a single lock shard (every intern serializes), the new side
    // the default 8.
    let reps = if quick { 2 } else { 5 };
    let single_ns = parallel_ingest_8way(&triples, 1, reps);
    let sharded_ns = parallel_ingest_8way(&triples, 8, reps);
    results.push(Measurement {
        name: "parallel_ingest_8way",
        baseline_ms: single_ns / 1e6,
        new_ms: sharded_ns / 1e6,
    });
    // Keep the row honest: the pool caps its lock shards at the host's
    // available parallelism, so on a low-core box the "8-way" column
    // measured fewer shards than its name says (by design — there is
    // no contention to eliminate there; see SharedTermDict docs).
    let effective_shards = SharedTermDict::with_shards(8).shard_count();
    if effective_shards < 8 {
        println!(
            "note: host parallelism caps the shared pool at {effective_shards} shard(s); \
             parallel_ingest_8way compared {effective_shards}-shard vs 1-shard"
        );
    }

    // --- pull-based query sessions over the synchronous PDMS ----------
    // First-result latency and early-termination savings vs the full
    // blocking drain of an 8-schema reformulation closure.
    exec_session_ops(quick, &mut results);

    // --- event-driven scheduler: overlapped in-flight subqueries ------
    // Simulated-clock first-result latency of window(4) vs window(1)
    // over the star federation (both columns simulated milliseconds).
    exec_overlap_ops(quick, &mut results);

    // --- open-loop latency under load ---------------------------------
    // p99 completion latency of the session-multiplexer stream at a
    // heavy vs light arrival rate (both columns simulated milliseconds).
    exec_load_ops(quick, &mut results);

    // --- replica failover under a crashed primary ---------------------
    // p99 session latency with the first-ranked holder of the
    // replicated data keys crashed vs fault-free (both columns
    // simulated milliseconds; identical rows, zero failures).
    exec_failover_ops(quick, &mut results);

    // --- report -------------------------------------------------------
    println!(
        "BENCH rdf: seed baseline vs columnar/interned/hash-join store ({} triples{})",
        triples.len(),
        if quick { ", --quick smoke" } else { "" }
    );
    let mut table = Table::new(&["operation", "seed_ms", "new_ms", "speedup"]);
    for m in &results {
        table.row(&[
            m.name.to_string(),
            format!("{:.2}", m.baseline_ms),
            format!("{:.2}", m.new_ms),
            format!("{:.1}x", m.baseline_ms / m.new_ms),
        ]);
    }
    print!("{}", table.render());

    if quick {
        // Smoke mode: regressions fail the asserts above; don't clobber
        // the checked-in full-corpus numbers.
        println!("\n--quick: skipping BENCH_rdf.json rewrite");
        return;
    }
    let mut json = format!("{{\n  \"triples\": {},\n  \"results\": [\n", triples.len());
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"seed_ms\": {:.3}, \"new_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.baseline_ms,
            m.new_ms,
            m.baseline_ms / m.new_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_rdf.json", &json).expect("write BENCH_rdf.json");
    println!("\nwrote BENCH_rdf.json");
}
