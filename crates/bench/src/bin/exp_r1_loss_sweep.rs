//! Robustness R1 — message loss vs retry budget (§2.1).
//!
//! "The Retrieve and the Update operations provide probabilistic
//! guarantees for data consistency and are efficient even in highly
//! unreliable, dynamic environments."
//!
//! Sweeps the per-request loss rate of the scheduler's fault process
//! against the query protocol's retry budget on a mapping-chain
//! corpus, and reports the delivered-row fraction relative to the
//! fault-free run plus the protocol's own accounting (timeouts,
//! retransmits, exhausted requests). Deterministic for a fixed seed:
//! CI runs this binary twice and diffs the transcripts.
//!
//! Usage: `exp_r1_loss_sweep [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_netsim::FaultConfig;
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

const CHAIN: usize = 6;

fn build_chain(fault: FaultConfig, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        fault,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..=CHAIN {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
    }
    for i in 0..CHAIN {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    sys
}

fn query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("target-value")),
        ),
    )
    .unwrap()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("R1: delivered rows under request loss vs retry budget ({repeats} repeats per point)");
    let plan = QueryPlan::search(query());
    let full_rows = (CHAIN + 1) * repeats;

    let mut table = Table::new(&[
        "loss",
        "retries",
        "rows",
        "timeouts/q",
        "retransmits/q",
        "exhausted/q",
    ]);
    for loss in [0.0f64, 0.05, 0.1, 0.2, 0.3] {
        for retries in [0usize, 1, 3, 10] {
            let mut rows = 0usize;
            let mut timeouts = 0usize;
            let mut retransmits = 0usize;
            let mut failures = 0usize;
            for rep in 0..repeats {
                let mut sys = build_chain(FaultConfig::lossy(loss), seed + rep as u64);
                let origin = sys.random_peer();
                let out = sys
                    .execute(
                        origin,
                        &plan,
                        &QueryOptions::new()
                            .strategy(Strategy::Iterative)
                            .window(4)
                            .max_retries(retries),
                    )
                    .unwrap();
                assert_eq!(
                    out.stats.sends,
                    out.stats.requests + out.stats.retransmits,
                    "send accounting"
                );
                rows += out.rows.len();
                timeouts += out.stats.timeouts;
                retransmits += out.stats.retransmits;
                failures += out.stats.failures;
            }
            table.row(&[
                f(loss, 2),
                retries.to_string(),
                f(rows as f64 / full_rows as f64, 3),
                f(timeouts as f64 / repeats as f64, 2),
                f(retransmits as f64 / repeats as f64, 2),
                f(failures as f64 / repeats as f64, 2),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: with no retries the delivered fraction decays with loss;\na budget of 3+ retries restores the full row set for loss <= 0.2 while the\ntimeout/retransmit columns absorb the cost.");
}
