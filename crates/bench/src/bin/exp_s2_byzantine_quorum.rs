//! Semantic robustness S2 — Byzantine fabrication vs adversary quorum
//! (§3.2).
//!
//! Designated adversarial peers fabricate well-typed equivalence edges
//! between random schemas each gossip round. Detection never reads the
//! [`Provenance::Byzantine`] ground-truth label — only cycle evidence
//! condemns a fabrication — so the sweep measures how many adversaries
//! the Bayesian analysis tolerates before wrong rows leak. The binary
//! also pins the accounting contract: every assessment probe is charged
//! as real overlay messages and simulated latency, exactly like a
//! subquery.
//!
//! Usage: `exp_s2_byzantine_quorum [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_netsim::SimDuration;
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{
    BayesConfig, Correspondence, MappingKind, MappingStatus, Provenance, Schema,
    SemanticFaultConfig,
};

const RING: usize = 5;
const GOSSIP_ROUNDS: usize = 4;
const PASSES: usize = 2;

fn build_ring(semantic: SemanticFaultConfig, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        semantic_fault: semantic,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..RING {
        sys.insert_schema(
            p0,
            Schema::new(format!("S{i}").as_str(), [format!("a{i}"), format!("b{i}")]),
        )
        .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
        // Bait for wrong correspondences: a fabricated edge that
        // mistranslates the query predicate onto the b-attribute pulls
        // these in as wrong rows — two decoys per attribute so a wrong
        // hop changes the row count, not just the row identities.
        for d in ["D", "E"] {
            sys.insert_triple(
                p0,
                Triple::new(
                    format!("seq:{d}{i}").as_str(),
                    format!("S{i}#b{i}").as_str(),
                    Term::literal("target-decoy"),
                ),
            )
            .unwrap();
        }
    }
    for i in 0..RING {
        let j = (i + 1) % RING;
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{j}").as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new(format!("a{i}"), format!("a{j}")),
                Correspondence::new(format!("b{i}"), format!("b{j}")),
            ],
        )
        .unwrap();
    }
    sys
}

fn query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("target%")),
        ),
    )
    .unwrap()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("S2: Byzantine fabrication vs adversary quorum ({repeats} repeats per point)");
    let plan = QueryPlan::search(query());
    let bayes = BayesConfig::default();
    let full_rows = RING * repeats;

    let mut table = Table::new(&[
        "adversaries",
        "rate",
        "rows",
        "fabricated/q",
        "quarantined/q",
        "probe ms/q",
    ]);
    for quorum in [1usize, 2, 4] {
        for rate in [0.2f64, 0.5] {
            let mut rows = 0usize;
            let mut fabricated = 0u64;
            let mut quarantined = 0usize;
            let mut probe_time = SimDuration::ZERO;
            for rep in 0..repeats {
                let mut sys = build_ring(
                    SemanticFaultConfig::byzantine(rate, (0..quorum).collect()),
                    seed + rep as u64,
                );
                let origin = sys.random_peer();
                for _ in 0..GOSSIP_ROUNDS {
                    sys.adversary_gossip(PeerId(0)).unwrap();
                }
                for _ in 0..PASSES {
                    let before = sys.messages_sent();
                    let report = sys.assessment_pass(origin, &bayes).unwrap();
                    // The accounting contract: probes cost real overlay
                    // messages and simulated time, like any subquery.
                    assert_eq!(
                        sys.messages_sent() - before,
                        report.stats.messages,
                        "assessment probes are charged as overlay messages"
                    );
                    assert_eq!(
                        report.stats.requests, report.cycles_probed,
                        "one routed request per probed cycle"
                    );
                    assert_eq!(
                        report.stats.assessment_probes as usize, report.cycles_probed,
                        "every probed cycle is counted as an assessment probe"
                    );
                    assert!(report.elapsed > SimDuration::ZERO);
                    probe_time += report.elapsed;
                }
                quarantined += sys
                    .registry()
                    .mappings()
                    .filter(|m| m.status == MappingStatus::Quarantined)
                    .count();
                let out = sys
                    .execute(
                        origin,
                        &plan,
                        &QueryOptions::new().strategy(Strategy::Iterative).window(4),
                    )
                    .unwrap();
                rows += out.rows.len();
                fabricated += sys.semantic_fault_counters().fabricated;
            }
            table.row(&[
                quorum.to_string(),
                f(rate, 2),
                f(rows as f64 / full_rows as f64, 3),
                f(fabricated as f64 / repeats as f64, 2),
                f(quarantined as f64 / repeats as f64, 2),
                f(probe_time.as_secs_f64() * 1000.0 / repeats as f64, 2),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: fabrications grow with the quorum and the rate, the\nquarantine column tracks the harmful ones (an accidentally-correct\nfabrication is consistent and may legitimately survive), and the delivered\nfraction stays at 1.000 — cycle evidence, not provenance labels, does the\nwork. Probe time scales with the fabricated edge count.");
}
