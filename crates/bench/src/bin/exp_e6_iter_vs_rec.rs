//! Experiment E6 — iterative vs recursive reformulation (§4).
//!
//! "In reformulating queries, we support two approaches: iterative,
//! where a peer iteratively looks for paths of mappings and reformulates
//! the query by itself, and recursive, where the successive
//! reformulations are delegated to intermediate peers."
//!
//! Builds mapping chains of length 1…8 and measures, per strategy, the
//! overlay messages per fully disseminated query and the results
//! returned. The iterative origin pays a mapping-fetch round trip per
//! schema; the recursive expansion forwards the query instead, so its
//! advantage grows with chain length.
//!
//! Usage: `exp_e6_iter_vs_rec [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

fn build_chain(len: usize, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 128,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..=len {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
    }
    for i in 0..len {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    sys
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("E6: iterative vs recursive reformulation ({repeats} repeats per point)");
    let query = TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("target-value")),
        ),
    )
    .unwrap();

    let mut table = Table::new(&[
        "chain len",
        "results",
        "iter msgs/query",
        "rec msgs/query",
        "rec/iter",
    ]);
    for len in 1..=8 {
        let mut iter_msgs = 0.0;
        let mut rec_msgs = 0.0;
        let mut results = 0usize;
        let plan = QueryPlan::search(query.clone());
        for rep in 0..repeats {
            let mut sys = build_chain(len, seed + rep as u64);
            let origin = sys.random_peer();
            let it = sys
                .execute(
                    origin,
                    &plan,
                    &QueryOptions::new().strategy(Strategy::Iterative),
                )
                .unwrap();
            iter_msgs += it.stats.messages as f64;
            results = it.rows.len();

            let mut sys = build_chain(len, seed + rep as u64);
            let origin = sys.random_peer();
            let rec = sys
                .execute(
                    origin,
                    &plan,
                    &QueryOptions::new().strategy(Strategy::Recursive),
                )
                .unwrap();
            rec_msgs += rec.stats.messages as f64;
            assert_eq!(rec.rows.len(), it.rows.len(), "strategies must agree");
        }
        iter_msgs /= repeats as f64;
        rec_msgs /= repeats as f64;
        table.row(&[
            len.to_string(),
            results.to_string(),
            f(iter_msgs, 1),
            f(rec_msgs, 1),
            f(rec_msgs / iter_msgs, 3),
        ]);
    }
    println!("\n{}", table.render());
    println!("both strategies return identical results; recursive saves the per-schema\nmapping-fetch round trips, so its relative cost falls with chain length.");
}
