//! Ablation A4 — conjunctive join policy (§2.3).
//!
//! The paper resolves conjunctive queries "by iteratively resolving each
//! triple pattern contained in the query and aggregating the sets of
//! results retrieved", without fixing the aggregation policy. This
//! ablation compares the two classic options on a selective ∧
//! unselective two-pattern join while the unselective pattern's
//! extension grows:
//!
//! * `Independent` — resolve both patterns over the network, join at the
//!   origin: ships the full extension of the unconstrained pattern.
//! * `BoundSubstitution` — resolve the selective pattern first, then one
//!   bound instance of the second pattern per surviving row: more routed
//!   subqueries, but shipped bindings stay proportional to the join
//!   result.
//!
//! Expected shape: `shipped(Independent)` grows linearly with the corpus
//! while `shipped(Bound)` stays flat; messages go the other way (bound
//! mode pays one O(log n) route per row). The crossover in total cost
//! (modelled as `messages + shipped/batch` with a per-message result
//! batch factor) moves toward Bound as the corpus grows.
//!
//! Usage: `exp_a4_join_mode [selective_matches] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryPlan, Strategy};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{ConjunctiveQuery, PatternTerm, Term, Triple, TriplePattern};
use gridvine_semantic::Schema;

/// Results per response message when shipping bindings back to the
/// origin (a coarse 2007-era UDP-datagram budget).
const BATCH: f64 = 20.0;

fn build_system(total_entities: usize, selective: usize, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("EMBL", ["Organism", "SequenceLength"]))
        .unwrap();
    for i in 0..total_entities {
        let subject = format!("seq:E{i:05}");
        // The first `selective` entities are Aspergillus; the rest are
        // other organisms. Every entity has a length fact, so the
        // unconstrained pattern's extension is the whole corpus.
        let organism = if i < selective {
            format!("Aspergillus strain {i}")
        } else {
            format!("Escherichia coli K-{i}")
        };
        sys.insert_triple(
            p0,
            Triple::new(subject.as_str(), "EMBL#Organism", Term::literal(organism)),
        )
        .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                subject.as_str(),
                "EMBL#SequenceLength",
                Term::literal(format!("{}", 400 + (i * 37) % 3000)),
            ),
        )
        .unwrap();
    }
    sys
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec!["x".into(), "len".into()],
        vec![
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("EMBL#Organism")),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                PatternTerm::var("len"),
            ),
        ],
    )
    .expect("valid query")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let selective: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!(
        "A4: join-policy ablation — {selective} selective matches, growing corpus \
         (cost model: messages + shipped/{BATCH})"
    );
    let mut table = Table::new(&[
        "entities",
        "rows",
        "ind msgs",
        "ind shipped",
        "ind cost",
        "bnd msgs",
        "bnd shipped",
        "bnd cost",
        "winner",
    ]);

    for total in [50usize, 200, 800, 3200] {
        let mut sys = build_system(total, selective, seed);
        let plan = QueryPlan::conjunctive(query());
        let ind = sys
            .execute(
                PeerId(1),
                &plan,
                &QueryOptions::new()
                    .strategy(Strategy::Iterative)
                    .join_mode(JoinMode::Independent),
            )
            .expect("independent mode resolves");
        let bnd = sys
            .execute(
                PeerId(1),
                &plan,
                &QueryOptions::new()
                    .strategy(Strategy::Iterative)
                    .join_mode(JoinMode::BoundSubstitution),
            )
            .expect("bound mode resolves");
        assert_eq!(ind.rows, bnd.rows, "modes must agree");
        let cost = |msgs: u64, shipped: usize| msgs as f64 + shipped as f64 / BATCH;
        let ic = cost(ind.stats.messages, ind.stats.bindings_shipped);
        let bc = cost(bnd.stats.messages, bnd.stats.bindings_shipped);
        table.row(&[
            format!("{total}"),
            format!("{}", ind.rows.len()),
            format!("{}", ind.stats.messages),
            format!("{}", ind.stats.bindings_shipped),
            f(ic, 1),
            format!("{}", bnd.stats.messages),
            format!("{}", bnd.stats.bindings_shipped),
            f(bc, 1),
            if ic <= bc { "independent" } else { "bound" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape check: independent's shipped bindings grow with the corpus; \
         bound's stay near the join result size."
    );
}
