//! Experiment E1 — the §2.3 deployment claim.
//!
//! "A recent deployment of GridVine on 340 machines scattered around the
//! world sharing 17000 triples showed that 40% of the 23000 triple
//! pattern queries we submitted were answered within one second only,
//! and 75% within five seconds."
//!
//! This binary builds the same deployment over the WAN simulator,
//! preloads a ≈17k-triple bioinformatics corpus, submits 23 000
//! single-pattern queries and prints the latency CDF with the paper's
//! two reference points.
//!
//! Usage: `exp_e1_latency_cdf [num_queries] [num_peers] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{Deployment, DeploymentConfig};
use gridvine_netsim::rng;
use gridvine_rdf::TriplePatternQuery;
use gridvine_workload::{QueryConfig, QueryGenerator, Workload, WorkloadConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let queries: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(23_000);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(340);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    // Calibration overrides (see EXPERIMENTS.md): per-message processing
    // and node-heterogeneity σ of the 2007 testbed model.
    let processing_ms: Option<u64> = args.next().and_then(|a| a.parse().ok());
    let heterogeneity: Option<f64> = args.next().and_then(|a| a.parse().ok());

    println!("E1: latency CDF — {peers} machines, 23k queries (paper: 340 machines, 17k triples)");
    let workload = Workload::generate(WorkloadConfig::paper_scale(seed));
    println!(
        "corpus: {} schemas, {} entities, {} triples",
        workload.schemas.len(),
        workload.entities.len(),
        workload.triple_count()
    );

    let mut config = DeploymentConfig {
        peers,
        ..DeploymentConfig::paper(seed)
    };
    if processing_ms.is_some() || heterogeneity.is_some() {
        use gridvine_netsim::network::LatencyConfig;
        if let LatencyConfig::RegionalWan {
            processing_ms: p,
            node_heterogeneity: h,
            ..
        } = &mut config.network.latency
        {
            if let Some(v) = processing_ms {
                *p = v;
            }
            if let Some(v) = heterogeneity {
                *h = v;
            }
        }
    }
    let mut deployment = Deployment::new(config);
    let placements = deployment.preload(workload.all_triples().into_iter().map(|(_, t)| t));
    println!(
        "preloaded {} (key, triple) placements over {} peers (depth {})",
        placements,
        peers,
        deployment.topology().depth()
    );

    let generator = QueryGenerator::new(&workload, QueryConfig::default());
    let mut r = rng::derive(seed, 0xE1);
    let batch: Vec<TriplePatternQuery> = generator
        .batch(queries, &mut r)
        .into_iter()
        .map(|g| g.query)
        .collect();

    let mut report = deployment.run_queries(&batch);
    println!(
        "submitted {}  answered {}  empty {}  timed-out {}  mean-hops {:.2}  messages {}",
        report.submitted,
        report.answered,
        report.not_found,
        report.timed_out,
        report.mean_hops,
        report.messages
    );

    let mut table = Table::new(&["threshold", "fraction answered ≤", "paper"]);
    for (thr, paper) in [(1.0, "0.40"), (5.0, "0.75")] {
        table.row(&[
            format!("{thr}s"),
            f(report.latencies.fraction_leq(thr), 3),
            paper.to_string(),
        ]);
    }
    println!("\n{}", table.render());

    let mut curve = Table::new(&["quantile", "latency (s)"]);
    for q in [0.1, 0.25, 0.4, 0.5, 0.75, 0.9, 0.95, 0.99] {
        curve.row(&[f(q, 2), f(report.latencies.quantile(q), 3)]);
    }
    println!("{}", curve.render());
}
