//! Semantic robustness S1 — stale and corrupted gossip vs Bayesian
//! quarantine (§3.2).
//!
//! "…analyzing transitive closures of mapping operations…"
//!
//! The semantic adversary re-gossips retired mappings (stale) and
//! permuted-correspondence copies of live ones (corrupted) into a
//! 5-schema equivalence ring. A resurrected wrong shortcut reaches its
//! target before the correct multi-hop path, so its mistranslated
//! predicate pulls decoy rows into the answer; assessment passes probe
//! the mapping cycles, quarantine the injected copies and restore the
//! exact fault-free answer. Sweeps the injection rate against the
//! number of assessment passes.
//! Deterministic for a fixed seed: CI runs this binary twice and diffs
//! the transcripts.
//!
//! Usage: `exp_s1_stale_gossip [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{
    BayesConfig, Correspondence, MappingKind, MappingStatus, Provenance, Schema,
    SemanticFaultConfig,
};

const RING: usize = 5;
const GOSSIP_ROUNDS: usize = 6;

/// The S1/S3 corpus: a 5-schema equivalence ring with two attributes
/// per schema (so corruption has a permutation to make), one target
/// triple and one decoy triple per schema, and a deprecated wrong
/// shortcut edge S0 → S2 (so stale gossip has a candidate to
/// resurrect that beats the correct two-hop path).
fn build_ring(semantic: SemanticFaultConfig, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        semantic_fault: semantic,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..RING {
        sys.insert_schema(
            p0,
            Schema::new(format!("S{i}").as_str(), [format!("a{i}"), format!("b{i}")]),
        )
        .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
        // Bait for wrong correspondences: a mapping that mistranslates
        // the query predicate onto the b-attribute picks these up as
        // wrong rows. Two decoys per attribute keep the damage visible
        // in the row *count*: a wrong hop shadows one correct row but
        // pulls in two decoys, so the fraction drifts above 1.000.
        for d in ["D", "E"] {
            sys.insert_triple(
                p0,
                Triple::new(
                    format!("seq:{d}{i}").as_str(),
                    format!("S{i}#b{i}").as_str(),
                    Term::literal("target-decoy"),
                ),
            )
            .unwrap();
        }
    }
    for i in 0..RING {
        let j = (i + 1) % RING;
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{j}").as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new(format!("a{i}"), format!("a{j}")),
                Correspondence::new(format!("b{i}"), format!("b{j}")),
            ],
        )
        .unwrap();
    }
    let decoy = sys
        .insert_mapping(
            p0,
            "S0",
            "S2",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![
                Correspondence::new("a0", "b2"),
                Correspondence::new("b0", "a2"),
            ],
        )
        .unwrap();
    sys.deprecate_mapping(p0, decoy).unwrap();
    sys
}

fn ring_query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("target%")),
        ),
    )
    .unwrap()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!(
        "S1: rows under stale/corrupted gossip vs assessment passes ({repeats} repeats per point)"
    );
    let plan = QueryPlan::search(ring_query());
    let bayes = BayesConfig::default();
    let full_rows = RING * repeats;

    let mut table = Table::new(&[
        "rate",
        "passes",
        "rows",
        "injected/q",
        "quarantined/q",
        "probes/q",
    ]);
    for rate in [0.0f64, 0.2, 0.5, 1.0] {
        for passes in [0usize, 1, 3] {
            let mut rows = 0usize;
            let mut injected = 0u64;
            let mut quarantined = 0usize;
            let mut probes = 0usize;
            for rep in 0..repeats {
                let mut sys = build_ring(
                    SemanticFaultConfig {
                        stale: rate,
                        corrupt: rate,
                        ..SemanticFaultConfig::none()
                    },
                    seed + rep as u64,
                );
                let origin = sys.random_peer();
                for _ in 0..GOSSIP_ROUNDS {
                    sys.adversary_gossip(PeerId(0)).unwrap();
                }
                for _ in 0..passes {
                    let report = sys.assessment_pass(origin, &bayes).unwrap();
                    probes += report.cycles_probed;
                }
                quarantined += sys
                    .registry()
                    .mappings()
                    .filter(|m| m.status == MappingStatus::Quarantined)
                    .count();
                let out = sys
                    .execute(
                        origin,
                        &plan,
                        &QueryOptions::new().strategy(Strategy::Iterative).window(4),
                    )
                    .unwrap();
                rows += out.rows.len();
                let counters = sys.semantic_fault_counters();
                injected += counters.stale + counters.corrupted;
            }
            table.row(&[
                f(rate, 2),
                passes.to_string(),
                f(rows as f64 / full_rows as f64, 3),
                f(injected as f64 / repeats as f64, 2),
                f(quarantined as f64 / repeats as f64, 2),
                f(probes as f64 / repeats as f64, 2),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: with zero passes the row fraction drifts above 1.000 as the\nrate grows — wrong-but-well-typed copies mistranslate the query predicate\nand pull in decoy rows. At bounded rates a single assessment pass\nquarantines the injected copies and pins rows back to exactly 1.000 (the\nprobe column shows the cycle-analysis traffic it paid); past the tolerance\nbound the swarm of identical wrong copies mutually validates through\nconsistent there-and-back cycles and out-votes the ring evidence, so some\nsurvive — the Bayesian defense is sound for a bounded adversary, not an\nunbounded one.");
}
