//! Experiment E3 — the connectivity indicator (§3.1).
//!
//! "ci ≥ 0 indicates the emergence of a giant connected component in
//! the graph of schemas and mappings. Thus, the mediation layer is not
//! strongly connected as long as ci < 0."
//!
//! Adds random equivalence mappings one at a time over 50 schemas and
//! prints, after each insertion, the locally computed indicator (from
//! degree records only) next to the ground-truth largest-SCC fraction,
//! so the ci = 0 crossover can be compared with the giant component's
//! emergence. Averages over several trials.
//!
//! Usage: `exp_e3_connectivity [schemas] [trials] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_netsim::rng;
use gridvine_semantic::{
    connectivity_indicator, Correspondence, MappingKind, MappingRegistry, Provenance, Schema,
};
use rand::Rng;

fn main() {
    let mut args = std::env::args().skip(1);
    let schemas: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("E3: connectivity indicator vs giant SCC — {schemas} schemas, {trials} trials");
    let max_mappings = schemas * 2;
    let mut sum_ci = vec![0.0f64; max_mappings + 1];
    let mut sum_scc = vec![0.0f64; max_mappings + 1];
    let mut sum_connected = vec![0.0f64; max_mappings + 1];
    let mut crossover_ci = Vec::new();
    let mut crossover_giant = Vec::new();

    for t in 0..trials {
        let mut r = rng::derive(seed, t as u64);
        let mut reg = MappingRegistry::new();
        for i in 0..schemas {
            reg.add_schema(Schema::new(format!("S{i}").as_str(), ["a"]));
        }
        let mut ci_cross: Option<usize> = None;
        let mut giant_cross: Option<usize> = None;
        for m in 1..=max_mappings {
            // Random unordered pair, random orientation, subsumption
            // mappings so directionality matters (as in real mapping
            // networks, where many mappings are one-way views).
            loop {
                let a = r.gen_range(0..schemas);
                let b = r.gen_range(0..schemas);
                if a == b {
                    continue;
                }
                reg.add_mapping(
                    format!("S{a}").as_str(),
                    format!("S{b}").as_str(),
                    MappingKind::Subsumption,
                    Provenance::Manual,
                    vec![Correspondence::new("a", "a")],
                );
                break;
            }
            let ci = connectivity_indicator(&reg.degree_records());
            let scc = reg.largest_scc_fraction();
            sum_ci[m] += ci;
            sum_scc[m] += scc;
            sum_connected[m] += if reg.is_strongly_connected() {
                1.0
            } else {
                0.0
            };
            if ci_cross.is_none() && ci >= 0.0 {
                ci_cross = Some(m);
            }
            if giant_cross.is_none() && scc >= 0.5 {
                giant_cross = Some(m);
            }
        }
        crossover_ci.push(ci_cross.unwrap_or(max_mappings) as f64);
        crossover_giant.push(giant_cross.unwrap_or(max_mappings) as f64);
    }

    let mut table = Table::new(&[
        "mappings",
        "mappings/schema",
        "ci (mean)",
        "largest SCC frac",
        "P(strongly conn.)",
    ]);
    for m in (5..=max_mappings).step_by(5) {
        table.row(&[
            m.to_string(),
            f(m as f64 / schemas as f64, 2),
            f(sum_ci[m] / trials as f64, 3),
            f(sum_scc[m] / trials as f64, 3),
            f(sum_connected[m] / trials as f64, 2),
        ]);
    }
    println!("\n{}", table.render());

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean ci=0 crossover: {:.1} mappings; mean giant-SCC (≥50%) emergence: {:.1} mappings",
        mean(&crossover_ci),
        mean(&crossover_giant)
    );
    println!("paper claim: the ci ≥ 0 transition tracks the emergence of the giant component.");
}
