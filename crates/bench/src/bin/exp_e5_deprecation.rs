//! Experiment E5 — deprecation dynamics (§4).
//!
//! "Removing some of the existing mappings fosters the creation of
//! additional mappings, some of which get deprecated by the Bayesian
//! analysis and are gradually replaced by other mapping paths."
//!
//! Builds a correct manual mapping ring over the schemas, injects a
//! configurable number of *erroneous* automatic mappings (deranged
//! correspondences — compositions survive but return wrong attributes),
//! then runs assessment rounds, tracking the posterior of good vs bad
//! mappings, cumulative deprecations, and probe precision/recall.
//!
//! Usage: `exp_e5_deprecation [bad_mappings] [rounds] [schemas] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, SelfOrgConfig};
use gridvine_pgrid::PeerId;
use gridvine_semantic::{MappingId, MappingKind, Provenance};
use gridvine_workload::{Workload, WorkloadConfig};
use std::collections::BTreeSet;

fn main() {
    let mut args = std::env::args().skip(1);
    let bad_count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let schemas: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!(
        "E5: Bayesian deprecation — {schemas} schemas, {bad_count} erroneous mappings injected"
    );
    let workload = Workload::generate(WorkloadConfig {
        schemas,
        entities: 150,
        export_fraction: 0.4,
        seed,
        ..WorkloadConfig::default()
    });
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &workload.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &workload.schemas {
        sys.insert_triples(p0, workload.triples_of(s.id())).unwrap();
    }
    // A trusted manual ring (users enter these at schema-insertion
    // time, §3.1) provides high-confidence cycles for the analysis.
    for i in 0..schemas {
        let a = workload.schemas[i].id().clone();
        let b = workload.schemas[(i + 1) % schemas].id().clone();
        let corrs = workload.ground_truth.correct_pairs(&a, &b);
        sys.insert_mapping(
            p0,
            a,
            b,
            MappingKind::Equivalence,
            Provenance::Manual,
            corrs,
        )
        .unwrap();
    }
    // Correct automatic chords — these must *survive* the analysis.
    let mut good: BTreeSet<MappingId> = BTreeSet::new();
    for k in 0..bad_count.min(schemas / 3) {
        let a = workload.schemas[(3 * k + 1) % schemas].id().clone();
        let b = workload.schemas[(3 * k + 3) % schemas].id().clone();
        let corrs = workload.ground_truth.correct_pairs(&a, &b);
        let id = sys
            .insert_mapping(
                p0,
                a,
                b,
                MappingKind::Equivalence,
                Provenance::Automatic,
                corrs,
            )
            .unwrap();
        good.insert(id);
    }
    // Erroneous chords across the ring: each swaps the organism and
    // accession attributes (concepts 0 and 1, present in every schema
    // and covered by every ring mapping — so cycle compositions always
    // survive and expose the error).
    let attr_of = |schema: &gridvine_semantic::SchemaId, concept: usize| -> String {
        let s = workload.schemas.iter().find(|s| s.id() == schema).unwrap();
        s.attributes()
            .iter()
            .find(|a| {
                workload
                    .ground_truth
                    .concept(schema, a)
                    .map(|c| c.0 == concept)
                    .unwrap_or(false)
            })
            .cloned()
            .expect("organism/accession are always present")
    };
    // Bad chords are spaced three schemas apart so no two of them share
    // a short cycle (correlated swap errors would otherwise cancel
    // around double-swap cycles and certify each other).
    let mut bad: BTreeSet<MappingId> = BTreeSet::new();
    for k in 0..bad_count.min(schemas / 3) {
        let a = workload.schemas[(3 * k) % schemas].id().clone();
        let b = workload.schemas[(3 * k + 2) % schemas].id().clone();
        let corrs = vec![
            gridvine_semantic::Correspondence::new(attr_of(&a, 0), attr_of(&b, 1)),
            gridvine_semantic::Correspondence::new(attr_of(&a, 1), attr_of(&b, 0)),
        ];
        let id = sys
            .insert_mapping(
                p0,
                a,
                b,
                MappingKind::Equivalence,
                Provenance::Automatic,
                corrs,
            )
            .unwrap();
        bad.insert(id);
    }
    println!(
        "installed {} good automatic, {} bad automatic, {} manual mappings",
        good.len(),
        bad.len(),
        sys.registry()
            .mappings()
            .filter(|m| m.provenance == Provenance::Manual)
            .count()
    );

    let cfg = SelfOrgConfig {
        max_new_mappings: 0, // isolate the assessment dynamics
        ..SelfOrgConfig::default()
    };
    let mean_quality = |sys: &GridVineSystem, ids: &BTreeSet<MappingId>| -> f64 {
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter()
            .filter_map(|id| sys.registry().mapping(*id))
            .map(|m| m.quality)
            .sum::<f64>()
            / ids.len() as f64
    };

    let mut table = Table::new(&[
        "round",
        "mean q(good)",
        "mean q(bad)",
        "bad deprecated",
        "good deprecated",
        "active mappings",
    ]);
    let mut bad_deprecated = 0usize;
    let mut good_deprecated = 0usize;
    for round in 1..=rounds {
        let rep = sys.self_organization_round(&cfg).unwrap();
        bad_deprecated += rep.deprecated.iter().filter(|id| bad.contains(id)).count();
        good_deprecated += rep.deprecated.iter().filter(|id| good.contains(id)).count();
        table.row(&[
            round.to_string(),
            f(mean_quality(&sys, &good), 3),
            f(mean_quality(&sys, &bad), 3),
            format!("{bad_deprecated}/{}", bad.len()),
            format!("{good_deprecated}/{}", good.len()),
            rep.active_mappings.to_string(),
        ]);
    }
    println!("\n{}", table.render());
    println!("paper claim: erroneous mappings are detected by the Bayesian cycle analysis\nand deprecated, while correct mappings survive.");

    // Repair phase (§4: deprecated mappings "are gradually replaced by
    // other mapping paths"): with composition repair enabled, each
    // deprecated chord whose endpoints remain connected through the
    // manual ring is replaced by the composed path — and the
    // replacement's correspondences are correct by construction.
    let repair_cfg = SelfOrgConfig {
        max_new_mappings: 0,
        repair_with_composition: true,
        ..SelfOrgConfig::default()
    };
    let mut replaced = Vec::new();
    for _ in 0..2 {
        let rep = sys.self_organization_round(&repair_cfg).unwrap();
        replaced.extend(rep.composed);
    }
    let mut correct_replacements = 0usize;
    for id in &replaced {
        let m = sys.registry().mapping(*id).unwrap();
        if m.correspondences
            .iter()
            .all(|c| workload.ground_truth.is_correct(&m.source, &m.target, c))
        {
            correct_replacements += 1;
        }
    }
    println!(
        "\nrepair phase: {} replacement mapping(s) composed from surviving paths, \
         {}/{} fully correct (mean quality {:.3})",
        replaced.len(),
        correct_replacements,
        replaced.len(),
        if replaced.is_empty() {
            0.0
        } else {
            replaced
                .iter()
                .filter_map(|id| sys.registry().mapping(*id))
                .map(|m| m.quality)
                .sum::<f64>()
                / replaced.len() as f64
        }
    );
}
