//! Semantic robustness S3 — self-repair under a mass-churn storm
//! (§2.1 + §3.2).
//!
//! The worst case of the fault matrix: a correlated storm takes down a
//! fraction of the population at t=0 (each node recovering after an
//! independent exponential outage) *while* the semantic adversary
//! gossips stale and corrupted mappings. The retry protocol has to
//! bridge the outages, the assessment passes have to quarantine the
//! injected edges, and the delivered rows have to re-converge to the
//! fault-free ground truth. Sweeps the storm fraction against the
//! number of assessment passes.
//!
//! Usage: `exp_s3_churn_storm_repair [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_netsim::churn::{ChurnEvent, ChurnProcess};
use gridvine_netsim::{SimDuration, SimTime};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{
    BayesConfig, Correspondence, MappingKind, MappingStatus, Provenance, Schema,
    SemanticFaultConfig,
};

const RING: usize = 5;
const PEERS: usize = 64;
const GOSSIP_ROUNDS: usize = 6;
const ADVERSARY_RATE: f64 = 0.2;
const MEAN_OUTAGE: SimDuration = SimDuration::from_millis(4);

fn build_ring(seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: PEERS,
        semantic_fault: SemanticFaultConfig {
            stale: ADVERSARY_RATE,
            corrupt: ADVERSARY_RATE,
            ..SemanticFaultConfig::none()
        },
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..RING {
        sys.insert_schema(
            p0,
            Schema::new(format!("S{i}").as_str(), [format!("a{i}"), format!("b{i}")]),
        )
        .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
        // Bait for wrong correspondences: an injected copy that
        // mistranslates the query predicate onto the b-attribute pulls
        // these in as wrong rows — two decoys per attribute so a wrong
        // hop changes the row count, not just the row identities.
        for d in ["D", "E"] {
            sys.insert_triple(
                p0,
                Triple::new(
                    format!("seq:{d}{i}").as_str(),
                    format!("S{i}#b{i}").as_str(),
                    Term::literal("target-decoy"),
                ),
            )
            .unwrap();
        }
    }
    for i in 0..RING {
        let j = (i + 1) % RING;
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{j}").as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new(format!("a{i}"), format!("a{j}")),
                Correspondence::new(format!("b{i}"), format!("b{j}")),
            ],
        )
        .unwrap();
    }
    let decoy = sys
        .insert_mapping(
            p0,
            "S0",
            "S2",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![
                Correspondence::new("a0", "b2"),
                Correspondence::new("b0", "a2"),
            ],
        )
        .unwrap();
    sys.deprecate_mapping(p0, decoy).unwrap();
    sys
}

fn query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("target%")),
        ),
    )
    .unwrap()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!(
        "S3: re-convergence under a churn storm + semantic adversary at rate {ADVERSARY_RATE} \
         ({repeats} repeats per point)"
    );
    let plan = QueryPlan::search(query());
    let bayes = BayesConfig::default();
    let full_rows = RING * repeats;

    let mut table = Table::new(&[
        "storm",
        "passes",
        "rows",
        "injected/q",
        "quarantined/q",
        "timeouts/q",
    ]);
    for fraction in [0.0f64, 0.25, 0.5] {
        for passes in [0usize, 3] {
            let mut rows = 0usize;
            let mut injected = 0u64;
            let mut quarantined = 0usize;
            let mut timeouts = 0usize;
            for rep in 0..repeats {
                let mut sys = build_ring(seed + rep as u64);
                let origin = sys.random_peer();
                let storm = ChurnProcess::storm(
                    PEERS,
                    fraction,
                    SimTime::ZERO,
                    MEAN_OUTAGE,
                    seed + rep as u64,
                );
                let events: Vec<ChurnEvent> = storm
                    .events()
                    .iter()
                    .filter(|e| e.node.index() != origin.index())
                    .copied()
                    .collect();
                sys.install_churn(&events);
                for _ in 0..GOSSIP_ROUNDS {
                    sys.adversary_gossip(PeerId(0)).unwrap();
                }
                for _ in 0..passes {
                    sys.assessment_pass(origin, &bayes).unwrap();
                }
                quarantined += sys
                    .registry()
                    .mappings()
                    .filter(|m| m.status == MappingStatus::Quarantined)
                    .count();
                let out = sys
                    .execute(
                        origin,
                        &plan,
                        &QueryOptions::new()
                            .strategy(Strategy::Iterative)
                            .window(4)
                            .max_retries(8),
                    )
                    .unwrap();
                rows += out.rows.len();
                timeouts += out.stats.timeouts;
                let counters = sys.semantic_fault_counters();
                injected += counters.stale + counters.corrupted;
            }
            table.row(&[
                f(fraction, 2),
                passes.to_string(),
                f(rows as f64 / full_rows as f64, 3),
                f(injected as f64 / repeats as f64, 2),
                f(quarantined as f64 / repeats as f64, 2),
                f(timeouts as f64 / repeats as f64, 2),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: with zero passes the row fraction drifts above 1.000 wherever\nthe adversary landed an injection (wrong copies pull in decoy rows); three\npasses pin it back to exactly 1.000 at every storm fraction — the retry\nbudget bridges the outages (timeout column) while the quarantine does the\nsemantic repair. The two fault layers compose.");
}
