//! Robustness R2 — reply duplication and reordering are free (§2.1).
//!
//! The request/response protocol tags every routed subquery with a
//! request id and delivers each id once: a network that duplicates or
//! reorders replies must change *nothing* about the answer — same
//! rows, same overlay messages — while the dropped copies are counted.
//! This binary sweeps the duplication rate (with reordering jitter on
//! top) and checks the invariance explicitly per run.
//!
//! Usage: `exp_r2_duplication_storm [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_netsim::{FaultConfig, SimDuration};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

const CHAIN: usize = 6;

fn build_chain(fault: FaultConfig, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        fault,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..=CHAIN {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
    }
    for i in 0..CHAIN {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    sys
}

fn query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("target-value")),
        ),
    )
    .unwrap()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("R2: reply duplication/reordering storm ({repeats} repeats per point)");
    let plan = QueryPlan::search(query());
    let options = QueryOptions::new().strategy(Strategy::Iterative).window(4);

    let mut table = Table::new(&[
        "duplication",
        "rows ok",
        "msgs ok",
        "dups dropped/q",
        "msgs/q",
    ]);
    for duplication in [0.0f64, 0.25, 0.5, 1.0] {
        let mut rows_ok = 0usize;
        let mut msgs_ok = 0usize;
        let mut dropped = 0usize;
        let mut messages = 0u64;
        for rep in 0..repeats {
            let mut clean = build_chain(FaultConfig::none(), seed + rep as u64);
            let origin = clean.random_peer();
            let base = clean.execute(origin, &plan, &options).unwrap();

            let mut cfg = FaultConfig::duplicating(duplication);
            cfg.reorder = 0.5;
            cfg.reorder_jitter = SimDuration::from_millis(20);
            let mut stormy = build_chain(cfg, seed + rep as u64);
            let origin = stormy.random_peer();
            let out = stormy.execute(origin, &plan, &options).unwrap();

            rows_ok += usize::from(out.rows == base.rows);
            msgs_ok += usize::from(out.stats.messages == base.stats.messages);
            dropped += out.stats.duplicates_dropped;
            messages += out.stats.messages;
        }
        assert_eq!(rows_ok, repeats, "duplication must never change rows");
        assert_eq!(msgs_ok, repeats, "duplication must never charge messages");
        table.row(&[
            f(duplication, 2),
            format!("{rows_ok}/{repeats}"),
            format!("{msgs_ok}/{repeats}"),
            f(dropped as f64 / repeats as f64, 2),
            f(messages as f64 / repeats as f64, 1),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected shape: rows and overlay messages match the clean run at every\nduplication rate; only the dropped-duplicate count grows with the rate.");
}
