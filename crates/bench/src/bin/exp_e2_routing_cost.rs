//! Experiment E2 — the `O(log |Π|)` routing-cost claim (§2.1/§2.3).
//!
//! "Since P-Grid uses a binary tree, Retrieve(key) is intuitively
//! efficient, i.e., O(log(|Π|)), measured in terms of the number of
//! messages required for resolving a search request, for both balanced
//! and unbalanced trees."
//!
//! Sweeps network sizes 16…1024, measures mean/p99 messages per
//! `Retrieve` on balanced trees and on data-adapted (unbalanced) trees,
//! and prints the ratio against `log2(leaves)`.
//!
//! Usage: `exp_e2_routing_cost [trials_per_size] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_netsim::rng;
use gridvine_netsim::Cdf;
use gridvine_pgrid::{
    BitString, KeyHasher, OrderPreservingHash, Overlay, PeerId, Topology, UniformHash,
};
use rand::Rng;

fn measure(topology: &Topology, trials: usize, seed: u64) -> (f64, f64, usize) {
    let mut overlay: Overlay<u8> = Overlay::new(topology);
    let mut r = rng::derive(seed, 0xE2);
    let h = OrderPreservingHash::default();
    let mut cdf = Cdf::new();
    for i in 0..trials {
        let key = h.hash(&format!("probe-key-{i}"), 24);
        let origin = PeerId::from_index(r.gen_range(0..topology.len()));
        let route = overlay.route(origin, &key, &mut r).expect("routable");
        cdf.record(route.messages() as f64);
    }
    (cdf.mean(), cdf.quantile(0.99), topology.depth())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("E2: messages per Retrieve vs network size ({trials} trials per size)");
    let mut table = Table::new(&[
        "peers",
        "depth",
        "mean msgs",
        "p99 msgs",
        "mean/log2(n)",
        "tree",
    ]);

    for exp in 4..=10 {
        let n = 1usize << exp;
        let mut r = rng::derive(seed, n as u64);

        // Balanced tree.
        let balanced = Topology::balanced(n, 2, &mut r);
        let (mean, p99, depth) = measure(&balanced, trials, seed);
        table.row(&[
            n.to_string(),
            depth.to_string(),
            f(mean, 2),
            f(p99, 1),
            f(mean / (n as f64).log2(), 3),
            "balanced".into(),
        ]);

        // Unbalanced (data-adapted to a skewed corpus).
        let h = UniformHash;
        let skewed: Vec<BitString> = (0..4 * n)
            .map(|i| {
                // 80 % of keys in the top 1/8 of the key space.
                let s = if i % 5 != 0 {
                    format!("hot-{}", i % (n / 2 + 1))
                } else {
                    format!("cold-{i}")
                };
                let mut key = BitString::parse("111");
                let rest = h.hash(&s, 21);
                for b in rest.iter() {
                    key.push(b);
                }
                if i % 5 == 0 {
                    h.hash(&s, 24)
                } else {
                    key
                }
            })
            .collect();
        let adapted = Topology::adapted(&skewed, n, 4 * n / (n / 2).max(1), 24, 2, &mut r);
        if adapted.validate().is_ok() {
            let (mean_u, p99_u, depth_u) = measure(&adapted, trials, seed + 1);
            table.row(&[
                n.to_string(),
                depth_u.to_string(),
                f(mean_u, 2),
                f(p99_u, 1),
                f(mean_u / (n as f64).log2(), 3),
                "adapted".into(),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!(
        "paper claim: messages grow as O(log n) — the mean/log2(n) column should stay ~constant."
    );
}
