//! Placement P1 — replica failover under crash faults (§2.1).
//!
//! "The Retrieve and the Update operations provide probabilistic
//! guarantees for data consistency and are efficient even in highly
//! unreliable, dynamic environments."
//!
//! Sweeps the placement policy's replication factor against the
//! fraction of replica holders crashed before the query, and reports
//! the delivered-row fraction plus the p50/p99 session latency on the
//! simulated clock. Victims are chosen deterministically (the
//! lowest-index holders, which the flat latency model ranks first —
//! every crash that can force a failover does), always sparing the
//! schema-key owners so mediation-layer discovery stays comparable
//! across cells. Deterministic for a fixed seed: CI runs this binary
//! twice and diffs the transcripts.
//!
//! Usage: `exp_p1_failover_sweep [repeats] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{
    GridVineConfig, GridVineSystem, PlacementPolicy, QueryOptions, QueryPlan, ResultEvent, Strategy,
};
use gridvine_netsim::Cdf;
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::Schema;

const PEERS: usize = 32;
const ROWS: usize = 3;

/// A single-schema system whose one predicate is covered by a
/// `factor`-way placement rule: the data resolution is the only
/// replica-path request a query issues.
fn build(factor: usize, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: PEERS,
        refs_per_level: 2,
        hash: gridvine_pgrid::HashKind::Uniform,
        placement: PlacementPolicy::new().replicate("S0#", factor),
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("S0", ["a0"])).unwrap();
    for i in 0..ROWS {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                "S0#a0",
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
    }
    sys
}

fn query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!(
        "P1: delivered rows and session latency under replica-holder crashes \
         ({repeats} repeats per point)"
    );
    let plan = QueryPlan::search(query());
    let options = QueryOptions::new()
        .strategy(Strategy::Iterative)
        .window(4)
        .max_retries(3);

    let mut table = Table::new(&[
        "factor",
        "crash",
        "down/q",
        "delivered",
        "p50 ms",
        "p99 ms",
        "failovers/q",
        "msgs/q",
    ]);
    for factor in [1usize, 2, 3, 5] {
        for crash in [0.0f64, 0.5, 1.0] {
            let mut delivered = 0usize;
            let mut down = 0usize;
            let mut failovers = 0usize;
            let mut messages = 0u64;
            let mut lat = Cdf::new();
            for rep in 0..repeats {
                let mut sys = build(factor, seed + rep as u64);
                let holders = sys.replica_holders("S0#a0");
                let schema_owners = sys.replica_holders("S0");
                let origin = (0..PEERS as u32)
                    .map(PeerId)
                    .find(|p| !holders.contains(p))
                    .expect("the replica set never covers all peers");
                // Crash the requested fraction of the holder set, lowest
                // index first (= the flat model's serving order), but
                // never a schema-key owner: mediation discovery must
                // keep working so the cells compare data availability.
                let want = (crash * holders.len() as f64).round() as usize;
                let victims: Vec<PeerId> = holders
                    .iter()
                    .filter(|p| !schema_owners.contains(p))
                    .take(want)
                    .copied()
                    .collect();
                for &v in &victims {
                    sys.crash_peer(v);
                }
                down += victims.len();

                let mut session = sys.open(origin, &plan, &options).expect("opens");
                let mut rows = 0usize;
                while let Some(ev) = session.next_event().expect("advances") {
                    if let ResultEvent::Rows(batch) = ev {
                        rows += batch.len();
                    }
                }
                lat.record_duration(session.sim_elapsed());
                let out = session.into_outcome();
                assert_eq!(
                    out.stats.sends,
                    out.stats.requests + out.stats.retransmits,
                    "send accounting"
                );
                if victims.len() < holders.len() {
                    // At least one replica survived: failover must keep
                    // the full row set with zero recorded failures.
                    assert_eq!(rows, ROWS, "surviving replica serves all rows");
                    assert_eq!(out.stats.failures, 0, "stats: {:?}", out.stats);
                } else {
                    assert_eq!(rows, 0, "no holder left to serve");
                }
                delivered += rows;
                failovers += out.stats.failovers;
                messages += out.stats.messages;
            }
            let per_q = repeats as f64;
            table.row(&[
                factor.to_string(),
                f(crash, 2),
                f(down as f64 / per_q, 2),
                f(delivered as f64 / (ROWS * repeats) as f64, 3),
                f(lat.quantile(0.5) * 1e3, 2),
                f(lat.quantile(0.99) * 1e3, 2),
                f(failovers as f64 / per_q, 2),
                f(messages as f64 / per_q, 1),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!(
        "expected shape: the delivered fraction stays 1.0 while any replica of the\n\
         data key survives and collapses to 0 only when the whole holder set is\n\
         down; the failover and message columns grow with the crashed-holder count\n\
         (one extra message per skipped holder) while the latency quantiles barely\n\
         move — the crashed-destination fast path costs messages, not timeouts."
    );
}
