//! Load L1 — arrival rate × admission cap (§2.3).
//!
//! The paper's deployment serves many concurrent querying peers; this
//! experiment measures what the concurrent-session multiplexer delivers
//! as open-loop submission pressure rises against a fixed admission
//! policy. For each (arrival rate, admission cap) point it drives a
//! Poisson stream of reformulated chain queries from 8 origins over the
//! regional WAN latency model and reports the delivered fraction, the
//! shed load (queued / rejected) and the completion-latency tail
//! (p50/p99 from real per-session completion instants). Deterministic
//! for a fixed seed: CI runs this binary twice and diffs the
//! transcripts.
//!
//! Usage: `exp_l1_arrival_sweep [sessions] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryPlan};
use gridvine_load::{run_open_loop, ArrivalProcess, LoadConfig};
use gridvine_netsim::LatencyConfig;
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

const CHAIN: usize = 4;

fn build_system(seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        latency: LatencyConfig::planetlab_2007(),
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..=CHAIN {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
    }
    for i in 0..CHAIN {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    sys
}

fn plans() -> Vec<QueryPlan> {
    vec![QueryPlan::search(
        TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S0#a0")),
                PatternTerm::constant(Term::literal("target-value")),
            ),
        )
        .unwrap(),
    )]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("L1: open-loop arrival rate x admission cap ({sessions} sessions per point)");
    let plans = plans();
    let mut table = Table::new(&[
        "rate/s",
        "cap",
        "delivered",
        "queued",
        "rejected",
        "p50 ms",
        "p99 ms",
    ]);
    for rate in [2.0f64, 5.0, 10.0, 20.0] {
        for cap in [2usize, 8, 32] {
            let cfg = LoadConfig {
                sessions,
                arrivals: ArrivalProcess::Poisson { rate },
                origins: 8,
                max_concurrent: cap,
                queue_capacity: cap,
                seed,
                ..LoadConfig::default()
            };
            let mut sys = build_system(seed);
            let r = run_open_loop(&mut sys, &plans, &cfg);
            assert_eq!(
                r.completed
                    + r.failed
                    + r.cancelled_deadline
                    + r.cancelled_budget
                    + r.rejected
                    + r.refused,
                r.submitted,
                "every session lands in exactly one bucket"
            );
            table.row(&[
                f(rate, 0),
                cap.to_string(),
                f(r.delivered_fraction(), 3),
                r.queued.to_string(),
                r.rejected.to_string(),
                f(r.latency.p50.as_micros() as f64 / 1000.0, 1),
                f(r.latency.p99.as_micros() as f64 / 1000.0, 1),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: below the origins' service capacity every point delivers\n~1.0 with a flat tail; past it small caps shed load (rejected grows) while\nlarge caps admit everything and push the shortfall into the p99 latency.");
}
