//! Load L2 — origin fairness and per-session budgets under load.
//!
//! The multiplexer replenishes scheduler windows round-robin across
//! sessions and the driver assigns origins round-robin across arrivals,
//! so no origin should starve another even when the pool saturates.
//! This experiment drives a saturating Poisson stream from a varying
//! origin count and sweeps the per-session budgets — a simulated-time
//! deadline and an overlay-message cap, both enforced through the
//! pool's drop-cancels-replies path — reporting the min/max fairness
//! index over per-origin completions and the exact cancel accounting.
//! Deterministic for a fixed seed: CI runs this binary twice and diffs
//! the transcripts.
//!
//! Usage: `exp_l2_fairness_budget [sessions] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_core::{GridVineConfig, GridVineSystem, QueryPlan};
use gridvine_load::{run_open_loop, ArrivalProcess, LoadConfig};
use gridvine_netsim::{LatencyConfig, SimDuration};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

const CHAIN: usize = 4;

fn build_system(seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        latency: LatencyConfig::planetlab_2007(),
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..=CHAIN {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("target-value"),
            ),
        )
        .unwrap();
    }
    for i in 0..CHAIN {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    // An isolated schema off the mapping chain: queries against it stop
    // after one pattern search (~9 messages vs ~40 for the chain walk).
    sys.insert_schema(p0, Schema::new("T0", ["b0"])).unwrap();
    sys.insert_triple(
        p0,
        Triple::new("seq:T0", "T0#b0", Term::literal("target-value")),
    )
    .unwrap();
    sys
}

/// A deep query (full reformulation walk over the equivalence chain)
/// and a cheap one (the isolated schema, a single pattern search),
/// alternated across arrivals: the message budget sits between their
/// costs, so it trims exactly the deep half.
fn plans() -> Vec<QueryPlan> {
    let on = |pred: &str| {
        QueryPlan::search(
            TriplePatternQuery::new(
                "x",
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri(pred)),
                    PatternTerm::constant(Term::literal("target-value")),
                ),
            )
            .unwrap(),
        )
    };
    vec![on("S0#a0"), on("T0#b0")]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(240);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!(
        "L2: origin fairness and budget cancels under open-loop WAN load ({sessions} sessions per point)"
    );
    let plans = plans();
    let mut table = Table::new(&[
        "origins",
        "deadline",
        "msg budget",
        "completed",
        "dl-cancel",
        "bg-cancel",
        "rejected",
        "fairness",
        "messages",
    ]);
    // Odd origin counts keep the round-robin origin assignment (i %
    // origins) decoupled from the round-robin plan assignment (i % 2),
    // so every origin sees both plan costs.
    for origins in [5usize, 15] {
        for (deadline, budget) in [
            (None, None),
            (Some(SimDuration::from_secs(3)), None),
            (None, Some(16u64)),
            (Some(SimDuration::from_secs(3)), Some(16u64)),
        ] {
            let cfg = LoadConfig {
                sessions,
                arrivals: ArrivalProcess::Poisson { rate: 4.0 },
                origins,
                max_concurrent: 8,
                queue_capacity: 16,
                deadline,
                message_budget: budget,
                seed,
                ..LoadConfig::default()
            };
            let mut sys = build_system(seed);
            let r = run_open_loop(&mut sys, &plans, &cfg);
            assert_eq!(
                r.completed
                    + r.failed
                    + r.cancelled_deadline
                    + r.cancelled_budget
                    + r.rejected
                    + r.refused,
                r.submitted,
                "every session lands in exactly one bucket"
            );
            table.row(&[
                origins.to_string(),
                deadline.map_or("-".into(), |d| format!("{}ms", d.as_micros() / 1000)),
                budget.map_or("-".into(), |b| b.to_string()),
                r.completed.to_string(),
                r.cancelled_deadline.to_string(),
                r.cancelled_budget.to_string(),
                r.rejected.to_string(),
                f(r.fairness(), 3),
                r.messages.to_string(),
            ]);
        }
    }
    println!("\n{}", table.render());
    println!("expected shape: round-robin replenishment keeps fairness near 1.0 at every\norigin count; deadlines convert slow completions into dl-cancels and the\nmessage budget trims the deepest reformulation chains, with cancelled work\nstill charged in the message column.");

    // Per-origin admission quotas beside the global cap: the quota
    // forces hot origins to queue instead of monopolizing slots, so
    // completion fairness must stay high even under saturation.
    let mut quotas = Table::new(&[
        "quota",
        "completed",
        "queued",
        "rejected",
        "fairness",
        "messages",
    ]);
    for quota in [None, Some(2usize), Some(1)] {
        let cfg = LoadConfig {
            sessions,
            arrivals: ArrivalProcess::Poisson { rate: 4.0 },
            origins: 5,
            max_concurrent: 8,
            origin_quota: quota,
            queue_capacity: 64,
            seed,
            ..LoadConfig::default()
        };
        let mut sys = build_system(seed);
        let r = run_open_loop(&mut sys, &plans, &cfg);
        assert_eq!(
            r.completed
                + r.failed
                + r.cancelled_deadline
                + r.cancelled_budget
                + r.rejected
                + r.refused,
            r.submitted,
            "every session lands in exactly one bucket"
        );
        if quota.is_some() {
            assert!(
                r.fairness() >= 0.95,
                "per-origin quotas must keep completions fair (got {})",
                r.fairness()
            );
        }
        quotas.row(&[
            quota.map_or("-".into(), |q| q.to_string()),
            r.completed.to_string(),
            r.queued.to_string(),
            r.rejected.to_string(),
            f(r.fairness(), 3),
            r.messages.to_string(),
        ]);
    }
    println!("\n{}", quotas.render());
    println!("expected shape: tightening the per-origin quota moves admissions into the\nwait queue (queued grows as quota shrinks) while the fairness index stays\npinned near 1.0 — no origin can buy extra slots by arriving in a burst.");
}
