//! Ablation A3 — matcher signal contribution (§3.2/§4).
//!
//! The demo creates mappings "using a combination of lexicographical
//! measures and set distance measures between the predicates defined in
//! both schemas". This ablation measures the precision and recall of
//! the created correspondences under each signal alone and combined,
//! against the generator's exact ground truth.
//!
//! Usage: `exp_a3_matcher [schemas] [seed]`

use gridvine_bench::table::f;
use gridvine_bench::Table;
use gridvine_semantic::{match_profiles, MatcherConfig};
use gridvine_workload::{Workload, WorkloadConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let schemas: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("A3: matcher ablation over {schemas} schemas (all unordered pairs)");
    // 40 % of (schema, concept) pairs store values in a non-canonical
    // format (upper-case, abbreviated, …): realistic cross-database
    // heterogeneity that degrades the instance signal and makes the
    // combination matter.
    let w = Workload::generate(WorkloadConfig {
        schemas,
        entities: 300,
        export_fraction: 0.35,
        value_noise: 0.4,
        seed,
        ..WorkloadConfig::default()
    });

    let mut table = Table::new(&[
        "matcher",
        "proposed",
        "correct",
        "precision",
        "recall",
        "f1",
    ]);
    for (name, cfg) in [
        ("lexical only", MatcherConfig::lexical_only()),
        ("instance only", MatcherConfig::instance_only()),
        ("combined", MatcherConfig::default()),
    ] {
        let mut proposed = 0usize;
        let mut correct = 0usize;
        let mut possible = 0usize;
        for i in 0..w.schemas.len() {
            for j in i + 1..w.schemas.len() {
                let a = w.schemas[i].id().clone();
                let b = w.schemas[j].id().clone();
                let pa = w.profile_of(&a);
                let pb = w.profile_of(&b);
                let found = match_profiles(&pa, &pb, &cfg);
                proposed += found.len();
                correct += found
                    .iter()
                    .filter(|s| w.ground_truth.is_correct(&a, &b, &s.correspondence))
                    .count();
                possible += w.ground_truth.correct_pairs(&a, &b).len();
            }
        }
        let precision = correct as f64 / proposed.max(1) as f64;
        let recall = correct as f64 / possible.max(1) as f64;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        table.row(&[
            name.to_string(),
            proposed.to_string(),
            correct.to_string(),
            f(precision, 3),
            f(recall, 3),
            f(f1, 3),
        ]);
    }
    println!("\n{}", table.render());
    println!("expected shape: each signal alone trades precision against recall; the\ncombination dominates on F1 — the reason the demo uses both (§4).");
}
