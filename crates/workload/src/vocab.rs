//! The bioinformatics domain vocabulary.
//!
//! The demonstration (§4) exports "structured data from a public
//! repository of the European Bioinformatics Institute … 50 distinct
//! schemas, all related to protein and nucleotide sequences". We cannot
//! ship EBI data, so this module fixes the *shape* of that corpus: a set
//! of domain **concepts** (organism, sequence, accession, …), each with
//! the attribute-name variants real databases use (EMBL says `Organism`,
//! EMP says `SystematicName`, SwissProt says `OS`-style `SourceOrganism`,
//! …). Generated schemas draw one variant per concept, which gives the
//! lexical matcher realistic near-miss names and gives us exact ground
//! truth (two attributes correspond iff they share a concept).

/// A semantic concept of the protein/nucleotide-sequence domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub usize);

/// One concept with its name variants across databases.
#[derive(Debug, Clone)]
pub struct Concept {
    pub id: ConceptId,
    /// Canonical name, for reporting.
    pub name: &'static str,
    /// Attribute-name variants databases use for this concept.
    pub variants: &'static [&'static str],
    /// Whether values are drawn from a small categorical pool (true) or
    /// are entity-specific (false). Categorical concepts make good query
    /// constraints (`%Aspergillus%`).
    pub categorical: bool,
}

/// The full concept inventory (16 concepts, ≥ 4 variants each).
pub const CONCEPTS: &[Concept] = &[
    Concept {
        id: ConceptId(0),
        name: "organism",
        variants: &[
            "Organism",
            "SystematicName",
            "Species",
            "SourceOrganism",
            "OrganismName",
            "Taxon",
        ],
        categorical: true,
    },
    Concept {
        id: ConceptId(1),
        name: "accession",
        variants: &[
            "Accession",
            "AccessionNumber",
            "EntryId",
            "PrimaryAccession",
            "AcNumber",
        ],
        categorical: false,
    },
    Concept {
        id: ConceptId(2),
        name: "sequence",
        variants: &[
            "Sequence",
            "SeqData",
            "Residues",
            "SequenceData",
            "PrimarySequence",
        ],
        categorical: false,
    },
    Concept {
        id: ConceptId(3),
        name: "length",
        variants: &[
            "Length",
            "SeqLength",
            "SequenceLength",
            "Size",
            "ResidueCount",
        ],
        categorical: false,
    },
    Concept {
        id: ConceptId(4),
        name: "description",
        variants: &[
            "Description",
            "Definition",
            "Title",
            "EntryDescription",
            "De",
        ],
        categorical: false,
    },
    Concept {
        id: ConceptId(5),
        name: "gene",
        variants: &["Gene", "GeneName", "Locus", "GeneSymbol", "OrfName"],
        categorical: false,
    },
    Concept {
        id: ConceptId(6),
        name: "keywords",
        variants: &["Keywords", "KeywordList", "Tags", "Kw"],
        categorical: true,
    },
    Concept {
        id: ConceptId(7),
        name: "molecule_type",
        variants: &["MoleculeType", "MolType", "Moltype", "BioMoleculeKind"],
        categorical: true,
    },
    Concept {
        id: ConceptId(8),
        name: "taxonomy",
        variants: &[
            "Taxonomy",
            "TaxonomicLineage",
            "Lineage",
            "TaxClassification",
            "OrganismClassification",
        ],
        categorical: true,
    },
    Concept {
        id: ConceptId(9),
        name: "created",
        variants: &["Created", "CreationDate", "DateCreated", "FirstPublic"],
        categorical: false,
    },
    Concept {
        id: ConceptId(10),
        name: "modified",
        variants: &[
            "Modified",
            "LastUpdated",
            "UpdateDate",
            "LastAnnotationUpdate",
        ],
        categorical: false,
    },
    Concept {
        id: ConceptId(11),
        name: "reference",
        variants: &["Reference", "Citation", "PubmedRef", "LiteratureReference"],
        categorical: false,
    },
    Concept {
        id: ConceptId(12),
        name: "function",
        variants: &[
            "Function",
            "MolecularFunction",
            "Activity",
            "FunctionComment",
        ],
        categorical: true,
    },
    Concept {
        id: ConceptId(13),
        name: "mass",
        variants: &["Mass", "MolecularWeight", "Mw", "MolWeight"],
        categorical: false,
    },
    Concept {
        id: ConceptId(14),
        name: "features",
        variants: &["Features", "FeatureTable", "Ft", "SequenceFeatures"],
        categorical: false,
    },
    Concept {
        id: ConceptId(15),
        name: "database",
        variants: &["Database", "SourceDb", "DataSource", "OriginDatabase"],
        categorical: true,
    },
];

/// Database-style schema names. The first few are the real databases the
/// paper's demo federates; the rest keep 50 schemas realistic.
pub const SCHEMA_NAMES: &[&str] = &[
    "EMBL",
    "EMP",
    "SwissProt",
    "TrEMBL",
    "GenBank",
    "PIR",
    "PDB",
    "Prosite",
    "InterPro",
    "Pfam",
    "UniParc",
    "RefSeq",
    "DDBJ",
    "EPD",
    "Ensembl",
    "FlyBase",
    "SGD",
    "MGD",
    "WormBase",
    "TAIR",
    "ZFIN",
    "EcoCyc",
    "KEGG",
    "BRENDA",
    "CATH",
    "SCOP",
    "ProDom",
    "PRINTS",
    "Blocks",
    "TIGRFAMs",
    "SMART",
    "HAMAP",
    "PIRSF",
    "SUPERFAMILY",
    "Gene3D",
    "PANTHER",
    "PhosSite",
    "GlycoDB",
    "EnzymeDB",
    "PathwayDB",
    "StructDB",
    "MotifDB",
    "DomainDB",
    "VariantDB",
    "ExpressDB",
    "InteractDB",
    "LocalisDB",
    "HomologDB",
    "OrthoDB",
    "ParaDB",
    "CrossRefDB",
    "AnnotDB",
    "CurateDB",
    "ArchiveDB",
];

/// Organism names for categorical values; Aspergillus species first so
/// the paper's `%Aspergillus%` query has answers.
pub const ORGANISMS: &[&str] = &[
    "Aspergillus niger",
    "Aspergillus nidulans",
    "Aspergillus fumigatus",
    "Aspergillus oryzae",
    "Saccharomyces cerevisiae",
    "Escherichia coli",
    "Homo sapiens",
    "Mus musculus",
    "Drosophila melanogaster",
    "Caenorhabditis elegans",
    "Arabidopsis thaliana",
    "Bacillus subtilis",
    "Schizosaccharomyces pombe",
    "Candida albicans",
    "Neurospora crassa",
    "Penicillium chrysogenum",
    "Rattus norvegicus",
    "Danio rerio",
    "Oryza sativa",
    "Zea mays",
    "Xenopus laevis",
    "Gallus gallus",
    "Plasmodium falciparum",
    "Mycobacterium tuberculosis",
    "Streptomyces coelicolor",
    "Thermus aquaticus",
    "Pyrococcus furiosus",
    "Haloferax volcanii",
    "Synechocystis sp.",
    "Dictyostelium discoideum",
];

/// Value pools for the other categorical concepts.
pub const KEYWORD_POOL: &[&str] = &[
    "hydrolase",
    "transferase",
    "oxidoreductase",
    "kinase",
    "membrane",
    "secreted",
    "glycoprotein",
    "zinc-finger",
    "dna-binding",
    "atp-binding",
    "signal-peptide",
    "transmembrane",
    "phosphoprotein",
    "repeat",
    "isomerase",
];

pub const MOLECULE_TYPES: &[&str] = &["protein", "mRNA", "genomic DNA", "rRNA", "tRNA", "cDNA"];

pub const FUNCTIONS: &[&str] = &[
    "catalysis",
    "transport",
    "signaling",
    "structural",
    "regulation",
    "binding",
    "storage",
    "defense",
    "motility",
    "replication",
];

pub const DATABASES: &[&str] = &["EBI", "NCBI", "DDBJ-Center", "ExPASy", "Sanger"];

/// The categorical value pool for a concept, if it has one.
pub fn value_pool(concept: ConceptId) -> Option<&'static [&'static str]> {
    match concept.0 {
        0 => Some(ORGANISMS),
        6 => Some(KEYWORD_POOL),
        7 => Some(MOLECULE_TYPES),
        8 => Some(ORGANISMS), // lineage strings reuse organism roots
        12 => Some(FUNCTIONS),
        15 => Some(DATABASES),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn concepts_have_unique_ids_and_enough_variants() {
        let ids: BTreeSet<usize> = CONCEPTS.iter().map(|c| c.id.0).collect();
        assert_eq!(ids.len(), CONCEPTS.len());
        for c in CONCEPTS {
            assert!(c.variants.len() >= 4, "{} has too few variants", c.name);
        }
    }

    #[test]
    fn variant_names_are_globally_unique() {
        // A variant name appearing under two concepts would make ground
        // truth ambiguous.
        let mut seen = BTreeSet::new();
        for c in CONCEPTS {
            for v in c.variants {
                assert!(seen.insert(*v), "duplicate variant {v}");
            }
        }
    }

    #[test]
    fn fifty_schema_names_available() {
        assert!(SCHEMA_NAMES.len() >= 50);
        let unique: BTreeSet<&str> = SCHEMA_NAMES.iter().copied().collect();
        assert_eq!(unique.len(), SCHEMA_NAMES.len());
    }

    #[test]
    fn categorical_concepts_have_pools() {
        for c in CONCEPTS {
            if c.categorical {
                assert!(value_pool(c.id).is_some(), "{} lacks a pool", c.name);
            }
        }
    }

    #[test]
    fn aspergillus_species_lead_the_organism_pool() {
        assert!(ORGANISMS[0].contains("Aspergillus"));
        assert!(
            ORGANISMS
                .iter()
                .filter(|o| o.contains("Aspergillus"))
                .count()
                >= 3
        );
    }
}
