//! Query workload generation.
//!
//! The paper's deployment submitted 23 000 triple-pattern queries (§2.3)
//! and the demo issues constrained organism searches (Fig. 2). The
//! generator produces queries of both shapes against a generated corpus,
//! with ground-truth answer sets so recall is measurable.

use crate::generate::Workload;
use crate::vocab::{self, ConceptId, CONCEPTS};
use gridvine_netsim::rng::Zipf;
use gridvine_rdf::{ConjunctiveQuery, PatternTerm, Term, TriplePattern, TriplePatternQuery};
use gridvine_semantic::SchemaId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A generated query with its provenance and exact answer set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedQuery {
    /// Schema the query is posed against.
    pub schema: SchemaId,
    /// Concept constrained by the query.
    pub concept: usize,
    /// The query itself.
    pub query: TriplePatternQuery,
    /// Accessions of *all* entities in the corpus whose concept value
    /// matches the constraint — the global ground-truth answer set a
    /// perfectly integrated system would return.
    pub true_answers: BTreeSet<String>,
}

/// Query-mix tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Zipf exponent over schemas (popular databases are queried more).
    pub schema_skew: f64,
    /// Probability of a `%substring%` constraint instead of equality.
    pub wildcard_probability: f64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            schema_skew: 0.8,
            wildcard_probability: 0.5,
        }
    }
}

/// Generates queries over one corpus.
pub struct QueryGenerator<'a> {
    workload: &'a Workload,
    config: QueryConfig,
    schema_zipf: Zipf,
}

impl<'a> QueryGenerator<'a> {
    pub fn new(workload: &'a Workload, config: QueryConfig) -> QueryGenerator<'a> {
        let schema_zipf = Zipf::new(workload.schemas.len(), config.schema_skew);
        QueryGenerator {
            workload,
            config,
            schema_zipf,
        }
    }

    /// Generate one single-pattern query: pick a schema, a categorical
    /// attribute of it, and a value constraint that has at least one
    /// true answer in the corpus.
    pub fn single<R: Rng + ?Sized>(&self, r: &mut R) -> GeneratedQuery {
        // Try schemas until one has a categorical attribute (organism
        // is always present, so the first try almost always works).
        loop {
            let s = &self.workload.schemas[self.schema_zipf.sample(r)];
            let categorical: Vec<(&str, ConceptId)> = s
                .attributes()
                .iter()
                .filter_map(|a| {
                    let c = self.workload.ground_truth.concept(s.id(), a)?;
                    CONCEPTS[c.0].categorical.then_some((String::as_str(a), c))
                })
                .collect();
            let Some(&(attr, concept)) = categorical.get(r.gen_range(0..categorical.len().max(1)))
            else {
                continue;
            };
            let pool = vocab::value_pool(concept).expect("categorical concept has a pool");
            let value = pool[r.gen_range(0..pool.len())];
            let pattern_text = if r.gen::<f64>() < self.config.wildcard_probability {
                // Constrain on the first word, Figure-2 style.
                let word = value.split_whitespace().next().unwrap_or(value);
                format!("%{word}%")
            } else {
                value.to_string()
            };
            let query = TriplePatternQuery::new(
                "x",
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::Uri(s.predicate(attr))),
                    PatternTerm::constant(Term::literal(pattern_text.clone())),
                ),
            )
            .expect("x occurs in the pattern");
            let true_answers = self.workload.true_matches(concept, &pattern_text);
            return GeneratedQuery {
                schema: s.id().clone(),
                concept: concept.0,
                query,
                true_answers,
            };
        }
    }

    /// A batch of queries.
    pub fn batch<R: Rng + ?Sized>(&self, n: usize, r: &mut R) -> Vec<GeneratedQuery> {
        (0..n).map(|_| self.single(r)).collect()
    }

    /// The Figure-2 query posed against EMBL, with its ground truth.
    pub fn figure2(&self) -> GeneratedQuery {
        let query = TriplePatternQuery::example_aspergillus();
        GeneratedQuery {
            schema: SchemaId::new("EMBL"),
            concept: 0,
            query,
            true_answers: self.workload.true_matches(ConceptId(0), "%Aspergillus%"),
        }
    }
}

/// A generated conjunctive (two-pattern join) query with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedConjunctiveQuery {
    /// Schema the query is posed against.
    pub schema: SchemaId,
    /// Concept constrained by the first pattern.
    pub constrained_concept: usize,
    /// Concept the second pattern joins in (unconstrained value).
    pub join_concept: usize,
    /// The query: `SELECT ?x, ?v WHERE (?x, s#a1, const), (?x, s#a2, ?v)`.
    pub query: ConjunctiveQuery,
    /// Accessions a perfectly integrated system would return: entities
    /// whose constrained-concept value matches *and* that are exported
    /// by at least one schema carrying the join concept (the second
    /// pattern needs an actual triple to bind `?v`).
    pub true_answers: BTreeSet<String>,
}

impl<'a> QueryGenerator<'a> {
    /// Generate a conjunctive query: a Figure-2-style constraint on a
    /// categorical attribute joined (on the subject) with a second,
    /// unconstrained attribute of the same schema (§2.3).
    pub fn conjunctive<R: Rng + ?Sized>(&self, r: &mut R) -> GeneratedConjunctiveQuery {
        loop {
            // Reuse the single-pattern machinery for the selective leg.
            let head = self.single(r);
            let Some(s) = self
                .workload
                .schemas
                .iter()
                .find(|s| *s.id() == head.schema)
            else {
                continue;
            };
            // A second attribute with a *different* concept.
            let others: Vec<(&str, ConceptId)> = s
                .attributes()
                .iter()
                .filter_map(|a| {
                    let c = self.workload.ground_truth.concept(s.id(), a)?;
                    (c.0 != head.concept).then_some((a.as_str(), c))
                })
                .collect();
            if others.is_empty() {
                continue;
            }
            let (join_attr, join_concept) = others[r.gen_range(0..others.len())];
            let query = ConjunctiveQuery::new(
                vec!["x".into(), "v".into()],
                vec![
                    head.query.pattern.clone(),
                    TriplePattern::new(
                        PatternTerm::var("x"),
                        PatternTerm::constant(Term::Uri(s.predicate(join_attr))),
                        PatternTerm::var("v"),
                    ),
                ],
            )
            .expect("x and v occur in the patterns");
            // Prune the head's truth to entities some schema can join.
            let joinable: BTreeSet<String> = self
                .workload
                .schemas
                .iter()
                .filter(|s2| {
                    s2.attributes().iter().any(|a| {
                        self.workload
                            .ground_truth
                            .concept(s2.id(), a)
                            .map(|c| c == join_concept)
                            .unwrap_or(false)
                    })
                })
                .flat_map(|s2| {
                    self.workload.exports[s2.id()]
                        .iter()
                        .map(|&i| self.workload.entities[i].accession.clone())
                })
                .collect();
            let true_answers: BTreeSet<String> =
                head.true_answers.intersection(&joinable).cloned().collect();
            return GeneratedConjunctiveQuery {
                schema: head.schema,
                constrained_concept: head.concept,
                join_concept: join_concept.0,
                query,
                true_answers,
            };
        }
    }

    /// A batch of conjunctive queries.
    pub fn conjunctive_batch<R: Rng + ?Sized>(
        &self,
        n: usize,
        r: &mut R,
    ) -> Vec<GeneratedConjunctiveQuery> {
        (0..n).map(|_| self.conjunctive(r)).collect()
    }
}

/// Recall of a result set against a query's global ground truth:
/// |found ∩ true| / |true| (1.0 when nothing is true).
pub fn recall(found: &BTreeSet<String>, truth: &BTreeSet<String>) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    found.intersection(truth).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::WorkloadConfig;
    use gridvine_netsim::rng;

    fn setup() -> Workload {
        Workload::generate(WorkloadConfig::small(5))
    }

    #[test]
    fn generated_queries_have_answers() {
        let w = setup();
        let g = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(1);
        let qs = g.batch(50, &mut r);
        assert_eq!(qs.len(), 50);
        let with_answers = qs.iter().filter(|q| !q.true_answers.is_empty()).count();
        // Values are drawn from the pools that generated the data, so
        // most constraints must be satisfiable.
        assert!(with_answers > 25, "{with_answers}/50 answerable");
    }

    #[test]
    fn queries_are_well_formed() {
        let w = setup();
        let g = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(2);
        for q in g.batch(30, &mut r) {
            assert_eq!(q.query.distinguished, "x");
            assert!(q.query.pattern.subject.is_var());
            let pred = q
                .query
                .pattern
                .predicate
                .as_const()
                .expect("constant predicate");
            assert!(pred.lexical().starts_with(q.schema.as_str()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = setup();
        let g = QueryGenerator::new(&w, QueryConfig::default());
        let a: Vec<String> = g
            .batch(10, &mut rng::seeded(3))
            .iter()
            .map(|q| q.query.to_string())
            .collect();
        let b: Vec<String> = g
            .batch(10, &mut rng::seeded(3))
            .iter()
            .map(|q| q.query.to_string())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn figure2_query_is_answerable() {
        let w = setup();
        let g = QueryGenerator::new(&w, QueryConfig::default());
        let q = g.figure2();
        assert!(!q.true_answers.is_empty());
        assert_eq!(q.schema, SchemaId::new("EMBL"));
    }

    #[test]
    fn recall_math() {
        let truth: BTreeSet<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let found: BTreeSet<String> = ["a", "b", "x"].iter().map(|s| s.to_string()).collect();
        assert!((recall(&found, &truth) - 0.5).abs() < 1e-12);
        assert_eq!(recall(&found, &BTreeSet::new()), 1.0);
        assert_eq!(recall(&BTreeSet::new(), &truth), 0.0);
    }

    #[test]
    fn conjunctive_queries_are_well_formed_and_answerable() {
        let w = setup();
        let g = QueryGenerator::new(&w, QueryConfig::default());
        let mut r = rng::seeded(6);
        let qs = g.conjunctive_batch(30, &mut r);
        for q in &qs {
            assert_eq!(q.query.patterns.len(), 2);
            assert_ne!(q.constrained_concept, q.join_concept);
            assert_eq!(
                q.query.distinguished,
                vec!["x".to_string(), "v".to_string()]
            );
            // Both predicates belong to the same schema.
            for p in &q.query.patterns {
                let pred = p.predicate.as_const().expect("constant predicate");
                assert!(pred.lexical().starts_with(q.schema.as_str()));
            }
            // Conjunctive truth never exceeds the head pattern's truth.
            assert!(q.true_answers.len() <= w.entities.len());
        }
        let answerable = qs.iter().filter(|q| !q.true_answers.is_empty()).count();
        assert!(answerable > 15, "{answerable}/30 answerable");
    }

    #[test]
    fn conjunctive_generation_is_deterministic() {
        let w = setup();
        let g = QueryGenerator::new(&w, QueryConfig::default());
        let a: Vec<String> = g
            .conjunctive_batch(8, &mut rng::seeded(7))
            .iter()
            .map(|q| q.query.to_string())
            .collect();
        let b: Vec<String> = g
            .conjunctive_batch(8, &mut rng::seeded(7))
            .iter()
            .map(|q| q.query.to_string())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_skew_prefers_popular_schemas() {
        let w = Workload::generate(WorkloadConfig {
            schemas: 20,
            ..WorkloadConfig::small(9)
        });
        let g = QueryGenerator::new(
            &w,
            QueryConfig {
                schema_skew: 1.2,
                ..QueryConfig::default()
            },
        );
        let mut r = rng::seeded(4);
        let qs = g.batch(400, &mut r);
        let first_schema = w.schemas[0].id().clone();
        let hits = qs.iter().filter(|q| q.schema == first_schema).count();
        assert!(hits > 40, "rank-0 schema should dominate: {hits}/400");
    }
}
