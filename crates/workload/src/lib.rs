//! # gridvine-workload
//!
//! Synthetic bioinformatics workload for the GridVine reproduction.
//!
//! The paper's demonstration (§4) federates real EBI data: "50 distinct
//! schemas, all related to protein and nucleotide sequences", linked by
//! "shared references to the same protein sequence". That data cannot be
//! redistributed, so this crate generates a corpus with the same
//! structure — and, because it is generated, with *exact ground truth*:
//!
//! * [`vocab`] — the domain concepts (organism, accession, sequence, …)
//!   and the attribute-name variants real databases use for them;
//! * [`generate::Workload`] — 50 schemas drawing per-concept name
//!   variants, hundreds of sequence entities with shared accessions,
//!   triples per schema, schema profiles for the matcher, and
//!   [`generate::GroundTruth`] for correspondence correctness;
//! * [`queries::QueryGenerator`] — Zipf-skewed single-pattern query
//!   workloads with global ground-truth answer sets, enabling exact
//!   recall measurements (the §4 storyline).
//!
//! ```
//! use gridvine_workload::prelude::*;
//!
//! let w = Workload::generate(WorkloadConfig::small(42));
//! assert_eq!(w.schemas.len(), 8);
//! let gen = QueryGenerator::new(&w, QueryConfig::default());
//! let fig2 = gen.figure2();
//! assert!(!fig2.true_answers.is_empty());
//! ```

pub mod generate;
pub mod queries;
pub mod vocab;

/// Glob-import surface.
pub mod prelude {
    pub use crate::generate::{Entity, GroundTruth, Workload, WorkloadConfig};
    pub use crate::queries::{
        recall, GeneratedConjunctiveQuery, GeneratedQuery, QueryConfig, QueryGenerator,
    };
    pub use crate::vocab::{Concept, ConceptId, CONCEPTS, ORGANISMS, SCHEMA_NAMES};
}

pub use generate::{Entity, GroundTruth, Workload, WorkloadConfig};
pub use queries::{recall, GeneratedConjunctiveQuery, GeneratedQuery, QueryConfig, QueryGenerator};
pub use vocab::{Concept, ConceptId, CONCEPTS, ORGANISMS, SCHEMA_NAMES};
