//! Workload generation: schemas, entities, triples and ground truth.
//!
//! The generator reproduces the *structure* of the paper's demo corpus
//! (§4): ~50 heterogeneous schemas about protein/nucleotide sequences,
//! sharing references to the same sequences (common accession subjects),
//! with lexically related but differently named attributes. Because we
//! generate it, we also know the true attribute correspondences —
//! [`GroundTruth`] — so recall and matcher precision are measurable,
//! which the original demo could only eyeball.

use crate::vocab::{self, Concept, ConceptId, CONCEPTS, SCHEMA_NAMES};
use gridvine_netsim::rng;
use gridvine_rdf::{Term, Triple, Uri};
use gridvine_semantic::{Correspondence, Schema, SchemaId, SchemaProfile};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of schemas (the paper uses 50).
    pub schemas: usize,
    /// Number of distinct sequence entities in the corpus.
    pub entities: usize,
    /// Attributes per schema, inclusive range.
    pub min_attrs: usize,
    pub max_attrs: usize,
    /// Fraction of all entities each schema exports (instance overlap
    /// between schemas comes from sampling the same entity pool).
    pub export_fraction: f64,
    /// Probability that a (schema, concept) pair renders its values in
    /// a non-canonical format (upper-case, first-word, abbreviated) —
    /// real databases disagree on formatting, which degrades the
    /// instance-based matching signal. 0 = every schema stores
    /// canonical values.
    pub value_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            schemas: 50,
            entities: 400,
            min_attrs: 5,
            max_attrs: 10,
            export_fraction: 0.25,
            value_noise: 0.0,
            seed: 0x000B_10DB,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration for unit tests.
    pub fn small(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            schemas: 8,
            entities: 60,
            min_attrs: 4,
            max_attrs: 7,
            export_fraction: 0.5,
            value_noise: 0.0,
            seed,
        }
    }

    /// Sized to the paper's deployment: 50 schemas and enough entities
    /// that the corpus holds ≈ 17 000 triples.
    pub fn paper_scale(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            schemas: 50,
            entities: 950,
            min_attrs: 5,
            max_attrs: 10,
            export_fraction: 0.05,
            value_noise: 0.0,
            seed,
        }
    }
}

/// One sequence entity with a value per concept.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entity {
    /// The shared accession, e.g. `P04832` — used as the triple subject
    /// by *every* schema exporting the entity. These are the "shared
    /// references to the same protein sequence" of §4.
    pub accession: String,
    /// concept id → value.
    pub values: BTreeMap<usize, String>,
}

impl Entity {
    /// Subject URI for triples about this entity.
    pub fn subject(&self) -> Uri {
        Uri::new(format!("seq:{}", self.accession))
    }
}

/// Exact attribute-level ground truth.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// (schema, attribute) → concept.
    concept_of: BTreeMap<(SchemaId, String), usize>,
}

impl GroundTruth {
    /// The concept an attribute denotes.
    pub fn concept(&self, schema: &SchemaId, attr: &str) -> Option<ConceptId> {
        self.concept_of
            .get(&(schema.clone(), attr.to_string()))
            .map(|&c| ConceptId(c))
    }

    /// Whether a correspondence between two schemas is semantically
    /// correct (same concept on both sides).
    pub fn is_correct(&self, source: &SchemaId, target: &SchemaId, c: &Correspondence) -> bool {
        match (
            self.concept(source, &c.source_attr),
            self.concept(target, &c.target_attr),
        ) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// All correct correspondences between two schemas.
    pub fn correct_pairs(&self, source: &SchemaId, target: &SchemaId) -> Vec<Correspondence> {
        let mut out = Vec::new();
        for ((s, attr), c) in &self.concept_of {
            if s != source {
                continue;
            }
            for ((t, battr), bc) in &self.concept_of {
                if t == target && c == bc {
                    out.push(Correspondence::new(attr.clone(), battr.clone()));
                }
            }
        }
        out
    }

    /// Number of labelled (schema, attribute) pairs.
    pub fn len(&self) -> usize {
        self.concept_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.concept_of.is_empty()
    }
}

/// How a schema renders a concept's values (databases disagree on
/// formatting; see [`WorkloadConfig::value_noise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueFormat {
    /// The canonical value as generated.
    Canonical,
    /// Upper-cased.
    Upper,
    /// First whitespace-separated word only.
    FirstWord,
    /// `Genus s.`-style abbreviation (first word + initial of second).
    Abbreviated,
}

impl ValueFormat {
    /// Render a canonical value in this format.
    pub fn render(self, canonical: &str) -> String {
        match self {
            ValueFormat::Canonical => canonical.to_string(),
            ValueFormat::Upper => canonical.to_uppercase(),
            ValueFormat::FirstWord => canonical
                .split_whitespace()
                .next()
                .unwrap_or(canonical)
                .to_string(),
            ValueFormat::Abbreviated => {
                let mut words = canonical.split_whitespace();
                match (words.next(), words.next()) {
                    (Some(first), Some(second)) => {
                        format!("{first} {}.", &second[..second.len().min(1)])
                    }
                    _ => canonical.to_string(),
                }
            }
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    pub config: WorkloadConfig,
    pub schemas: Vec<Schema>,
    pub entities: Vec<Entity>,
    /// Which entities each schema exports (indices into `entities`).
    pub exports: BTreeMap<SchemaId, Vec<usize>>,
    /// Per (schema, concept) value formatting.
    pub formats: BTreeMap<(SchemaId, usize), ValueFormat>,
    pub ground_truth: GroundTruth,
}

impl Workload {
    /// Generate a corpus deterministically from the config.
    pub fn generate(config: WorkloadConfig) -> Workload {
        assert!(config.schemas >= 1, "need at least one schema");
        assert!(
            config.schemas <= SCHEMA_NAMES.len(),
            "at most {} schemas supported",
            SCHEMA_NAMES.len()
        );
        assert!(
            config.min_attrs >= 1 && config.min_attrs <= config.max_attrs,
            "invalid attribute range"
        );
        assert!(
            (0.0..=1.0).contains(&config.export_fraction),
            "export fraction in [0,1]"
        );
        let mut r = rng::seeded(config.seed);

        // Entities.
        let organisms = vocab::ORGANISMS;
        let entities: Vec<Entity> = (0..config.entities)
            .map(|i| {
                let accession = format!("P{:05}", 10_000 + i * 7 % 90_000);
                let mut values = BTreeMap::new();
                for c in CONCEPTS {
                    let v = match vocab::value_pool(c.id) {
                        Some(pool) => pool[r.gen_range(0..pool.len())].to_string(),
                        None => synth_value(c, &accession, &mut r),
                    };
                    values.insert(c.id.0, v);
                }
                // Organism and taxonomy must agree (lineage embeds the
                // organism) for realism.
                let org = organisms[r.gen_range(0..organisms.len())].to_string();
                values.insert(ConceptId(8).0, format!("cellular organisms; {org}"));
                values.insert(ConceptId(0).0, org);
                Entity { accession, values }
            })
            .collect();

        // Schemas: the first schema is always EMBL with an `Organism`
        // attribute so the paper's Figure-2 query works verbatim; the
        // second is EMP with `SystematicName`.
        let mut schemas = Vec::with_capacity(config.schemas);
        let mut ground_truth = GroundTruth::default();
        for (si, name) in SCHEMA_NAMES.iter().take(config.schemas).enumerate() {
            let id = SchemaId::new(*name);
            let n_attrs = r.gen_range(config.min_attrs..=config.max_attrs);
            // Choose concepts: always include organism + accession so
            // instance linking works, then random others.
            let mut concept_ids: Vec<usize> = vec![0, 1];
            let mut others: Vec<usize> = (2..CONCEPTS.len()).collect();
            others.shuffle(&mut r);
            concept_ids.extend(others.into_iter().take(n_attrs.saturating_sub(2)));

            let mut attrs = Vec::new();
            for &cid in &concept_ids {
                let concept = &CONCEPTS[cid];
                let variant = match (si, cid) {
                    (0, 0) => "Organism",       // EMBL#Organism (Fig. 2)
                    (1, 0) => "SystematicName", // EMP#SystematicName (Fig. 2)
                    _ => concept.variants[r.gen_range(0..concept.variants.len())],
                };
                attrs.push(variant.to_string());
                ground_truth
                    .concept_of
                    .insert((id.clone(), variant.to_string()), cid);
            }
            schemas.push(Schema::new(*name, attrs));
        }

        // Value formats: with probability `value_noise`, a schema stores
        // a concept in a non-canonical format. The Figure-2 schemas keep
        // organism canonical so the `%Aspergillus%` walkthrough works.
        let mut formats = BTreeMap::new();
        let variants = [
            ValueFormat::Upper,
            ValueFormat::FirstWord,
            ValueFormat::Abbreviated,
        ];
        for (si, s) in schemas.iter().enumerate() {
            for attr in s.attributes() {
                let cid = ground_truth.concept(s.id(), attr).expect("labelled").0;
                let figure2 = si < 2 && cid == 0;
                let fmt = if !figure2 && r.gen::<f64>() < config.value_noise {
                    variants[r.gen_range(0..variants.len())]
                } else {
                    ValueFormat::Canonical
                };
                formats.insert((s.id().clone(), cid), fmt);
            }
        }

        // Exports: each schema samples its share of the entity pool.
        let per_schema = ((config.entities as f64 * config.export_fraction).round() as usize)
            .clamp(1, config.entities);
        let mut exports = BTreeMap::new();
        for s in &schemas {
            let mut idx: Vec<usize> = (0..config.entities).collect();
            idx.shuffle(&mut r);
            idx.truncate(per_schema);
            idx.sort_unstable();
            exports.insert(s.id().clone(), idx);
        }

        Workload {
            config,
            schemas,
            entities,
            exports,
            formats,
            ground_truth,
        }
    }

    /// The value `schema` stores for `concept` of an entity, in the
    /// schema's own format.
    pub fn rendered_value(&self, schema: &SchemaId, concept: usize, entity: &Entity) -> String {
        let canonical = &entity.values[&concept];
        self.formats
            .get(&(schema.clone(), concept))
            .copied()
            .unwrap_or(ValueFormat::Canonical)
            .render(canonical)
    }

    /// The triples one schema contributes: for each exported entity and
    /// each schema attribute, `(seq:ACC, Schema#Attr, value)`.
    pub fn triples_of(&self, schema: &SchemaId) -> Vec<Triple> {
        let Some(s) = self.schemas.iter().find(|s| s.id() == schema) else {
            return Vec::new();
        };
        let Some(idx) = self.exports.get(schema) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &i in idx {
            let e = &self.entities[i];
            for attr in s.attributes() {
                let cid = self
                    .ground_truth
                    .concept(schema, attr)
                    .expect("generated attributes are labelled");
                let value = self.rendered_value(schema, cid.0, e);
                out.push(Triple::new(
                    e.subject(),
                    s.predicate(attr),
                    Term::literal(value),
                ));
            }
        }
        out
    }

    /// All triples of the corpus, tagged by schema.
    pub fn all_triples(&self) -> Vec<(SchemaId, Triple)> {
        self.schemas
            .iter()
            .flat_map(|s| {
                self.triples_of(s.id())
                    .into_iter()
                    .map(move |t| (s.id().clone(), t))
            })
            .collect()
    }

    /// Total triple count.
    pub fn triple_count(&self) -> usize {
        self.schemas
            .iter()
            .map(|s| self.exports[s.id()].len() * s.len())
            .sum()
    }

    /// The observable [`SchemaProfile`] of a schema (feeds the matcher).
    pub fn profile_of(&self, schema: &SchemaId) -> SchemaProfile {
        let mut p = SchemaProfile::new(schema.clone());
        let Some(s) = self.schemas.iter().find(|s| s.id() == schema) else {
            return p;
        };
        if let Some(idx) = self.exports.get(schema) {
            for &i in idx {
                let e = &self.entities[i];
                for attr in s.attributes() {
                    let cid = self.ground_truth.concept(schema, attr).expect("labelled");
                    let value = self.rendered_value(schema, cid.0, e);
                    p.observe(attr.clone(), e.accession.clone(), value);
                }
            }
        }
        p
    }

    /// Entities exported by both schemas (shared references).
    pub fn shared_entities(&self, a: &SchemaId, b: &SchemaId) -> Vec<usize> {
        let (Some(ea), Some(eb)) = (self.exports.get(a), self.exports.get(b)) else {
            return Vec::new();
        };
        let sb: BTreeSet<usize> = eb.iter().copied().collect();
        ea.iter().copied().filter(|i| sb.contains(i)).collect()
    }

    /// Ground-truth answer set for "entities of schema `s` whose concept
    /// `c` value matches `pattern`" — used to compute recall exactly.
    pub fn true_matches(&self, concept: ConceptId, pattern: &str) -> BTreeSet<String> {
        self.entities
            .iter()
            .filter(|e| {
                e.values
                    .get(&concept.0)
                    .map(|v| gridvine_rdf::like_match(v, pattern))
                    .unwrap_or(false)
            })
            .map(|e| e.accession.clone())
            .collect()
    }
}

fn synth_value<R: Rng + ?Sized>(c: &Concept, accession: &str, r: &mut R) -> String {
    match c.name {
        "accession" => accession.to_string(),
        "sequence" => {
            let len = r.gen_range(10..40);
            let alphabet = ['A', 'C', 'D', 'E', 'F', 'G', 'H', 'K', 'L', 'M'];
            (0..len)
                .map(|_| alphabet[r.gen_range(0..alphabet.len())])
                .collect()
        }
        "length" => format!("{}", r.gen_range(80..4000)),
        "description" => format!("putative protein {accession}"),
        "gene" => format!("gene{}", r.gen_range(1..999)),
        "created" => format!(
            "199{}-0{}-1{}",
            r.gen_range(0..10),
            r.gen_range(1..10),
            r.gen_range(0..10)
        ),
        "modified" => format!(
            "200{}-0{}-2{}",
            r.gen_range(0..8),
            r.gen_range(1..10),
            r.gen_range(0..8)
        ),
        "reference" => format!("PMID:{}", r.gen_range(1_000_000..9_999_999)),
        "mass" => format!("{}", r.gen_range(8_000..200_000)),
        "features" => format!("{} features", r.gen_range(1..30)),
        other => format!("{other}-{accession}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        Workload::generate(WorkloadConfig::small(1))
    }

    #[test]
    fn generates_requested_shape() {
        let w = small();
        assert_eq!(w.schemas.len(), 8);
        assert_eq!(w.entities.len(), 60);
        for s in &w.schemas {
            assert!(s.len() >= 4 && s.len() <= 7, "{:?}", s);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(WorkloadConfig::small(7));
        let b = Workload::generate(WorkloadConfig::small(7));
        assert_eq!(a.schemas, b.schemas);
        assert_eq!(a.triple_count(), b.triple_count());
        assert_eq!(
            a.triples_of(&SchemaId::new("EMBL")),
            b.triples_of(&SchemaId::new("EMBL"))
        );
    }

    #[test]
    fn figure2_schemas_present() {
        let w = small();
        let embl = w
            .schemas
            .iter()
            .find(|s| s.id().as_str() == "EMBL")
            .unwrap();
        assert!(embl.has_attribute("Organism"));
        let emp = w.schemas.iter().find(|s| s.id().as_str() == "EMP").unwrap();
        assert!(emp.has_attribute("SystematicName"));
        // Ground truth links them to the same concept.
        let c1 = w
            .ground_truth
            .concept(&SchemaId::new("EMBL"), "Organism")
            .unwrap();
        let c2 = w
            .ground_truth
            .concept(&SchemaId::new("EMP"), "SystematicName")
            .unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn triples_share_subjects_across_schemas() {
        let w = small();
        let a = SchemaId::new("EMBL");
        let b = SchemaId::new("EMP");
        let shared = w.shared_entities(&a, &b);
        assert!(
            !shared.is_empty(),
            "50% export over 60 entities must overlap"
        );
        let ta = w.triples_of(&a);
        let tb = w.triples_of(&b);
        let subjects_a: BTreeSet<&str> = ta.iter().map(|t| t.subject.as_str()).collect();
        let subjects_b: BTreeSet<&str> = tb.iter().map(|t| t.subject.as_str()).collect();
        assert!(subjects_a.intersection(&subjects_b).count() >= shared.len());
    }

    #[test]
    fn triple_count_matches_enumeration() {
        let w = small();
        assert_eq!(w.triple_count(), w.all_triples().len());
    }

    #[test]
    fn paper_scale_is_about_17k_triples() {
        let w = Workload::generate(WorkloadConfig::paper_scale(3));
        let n = w.triple_count();
        assert!(
            (15_000..20_000).contains(&n),
            "expected ≈17k triples, got {n}"
        );
        assert_eq!(w.schemas.len(), 50);
    }

    #[test]
    fn ground_truth_correct_pairs_are_symmetric_in_size() {
        let w = small();
        let a = SchemaId::new("EMBL");
        let b = SchemaId::new("EMP");
        let ab = w.ground_truth.correct_pairs(&a, &b);
        let ba = w.ground_truth.correct_pairs(&b, &a);
        assert_eq!(ab.len(), ba.len());
        assert!(!ab.is_empty(), "organism+accession are always shared");
        for c in &ab {
            assert!(w.ground_truth.is_correct(&a, &b, c));
            assert!(!w.ground_truth.is_correct(
                &a,
                &b,
                &Correspondence::new(c.source_attr.clone(), "Nonexistent")
            ));
        }
    }

    #[test]
    fn profiles_expose_shared_instance_values() {
        let w = small();
        let a = w.profile_of(&SchemaId::new("EMBL"));
        let b = w.profile_of(&SchemaId::new("EMP"));
        let shared = a.shared_instances(&b);
        assert!(!shared.is_empty());
        // Same concept ⇒ same values on shared instances.
        let organisms_a = &a.attributes["Organism"];
        let organisms_b = &b.attributes["SystematicName"];
        for i in &shared {
            assert_eq!(organisms_a.get(i), organisms_b.get(i));
        }
    }

    #[test]
    fn aspergillus_query_has_true_matches() {
        let w = small();
        let truth = w.true_matches(ConceptId(0), "%Aspergillus%");
        assert!(!truth.is_empty(), "organism pool is Aspergillus-heavy");
    }

    #[test]
    fn value_noise_changes_formats_but_not_ground_truth() {
        let noisy = Workload::generate(WorkloadConfig {
            value_noise: 0.8,
            ..WorkloadConfig::small(13)
        });
        let non_canonical = noisy
            .formats
            .values()
            .filter(|f| **f != ValueFormat::Canonical)
            .count();
        assert!(non_canonical > 0, "80% noise must hit some formats");
        // Figure-2 organism attributes stay canonical.
        assert_eq!(
            noisy.formats.get(&(SchemaId::new("EMBL"), 0)),
            Some(&ValueFormat::Canonical)
        );
        assert_eq!(
            noisy.formats.get(&(SchemaId::new("EMP"), 0)),
            Some(&ValueFormat::Canonical)
        );
        // Ground truth is about concepts, not formats.
        let clean = Workload::generate(WorkloadConfig::small(13));
        assert_eq!(noisy.ground_truth.len(), clean.ground_truth.len());
    }

    #[test]
    fn value_formats_render() {
        assert_eq!(
            ValueFormat::Canonical.render("Aspergillus niger"),
            "Aspergillus niger"
        );
        assert_eq!(
            ValueFormat::Upper.render("Aspergillus niger"),
            "ASPERGILLUS NIGER"
        );
        assert_eq!(
            ValueFormat::FirstWord.render("Aspergillus niger"),
            "Aspergillus"
        );
        assert_eq!(
            ValueFormat::Abbreviated.render("Aspergillus niger"),
            "Aspergillus n."
        );
        assert_eq!(ValueFormat::Abbreviated.render("single"), "single");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_schemas_rejected() {
        Workload::generate(WorkloadConfig {
            schemas: 500,
            ..WorkloadConfig::default()
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every generated triple's predicate is labelled in the ground
        /// truth and its subject is a shared-accession URI.
        #[test]
        fn triples_are_labelled(seed in 0u64..50) {
            let w = Workload::generate(WorkloadConfig::small(seed));
            for (schema, t) in w.all_triples() {
                let attr = t.predicate.local_name().to_string();
                prop_assert!(w.ground_truth.concept(&schema, &attr).is_some());
                prop_assert!(t.subject.as_str().starts_with("seq:"));
            }
        }

        /// correct_pairs only ever contains same-concept pairs.
        #[test]
        fn correct_pairs_sound(seed in 0u64..30) {
            let w = Workload::generate(WorkloadConfig::small(seed));
            let ids: Vec<SchemaId> = w.schemas.iter().map(|s| s.id().clone()).collect();
            for a in &ids {
                for b in &ids {
                    if a == b { continue; }
                    for c in w.ground_truth.correct_pairs(a, b) {
                        prop_assert_eq!(
                            w.ground_truth.concept(a, &c.source_attr),
                            w.ground_truth.concept(b, &c.target_attr)
                        );
                    }
                }
            }
        }
    }
}
