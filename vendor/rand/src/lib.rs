//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand 0.8 API this workspace uses —
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] — over a real xoshiro256++ generator, so the
//! simulations keep high-quality deterministic randomness without any
//! registry access. Sequences differ from upstream rand's (different
//! core generator), which is fine: nothing in the tree depends on the
//! exact stream, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a [`Standard`] draw can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + (self.end() - self.start()) * f64::from_rng(rng)
    }
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // Offline build: derive "entropy" from the monotonic clock.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Shuffling and random choice over slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching rand's guarantees (uniform permutation).
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_hits() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut r).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut r).is_none());
    }
}
