//! Offline stand-in for `serde`.
//!
//! The container building this workspace has no crates.io access, and no
//! code path serializes at runtime — `#[derive(Serialize, Deserialize)]`
//! is kept throughout the tree so types remain wire-ready for a future
//! networked deployment. This shim supplies the two trait names and
//! re-exports the no-op derives so those annotations keep compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; satisfied by everything (the derive emits no impl).
pub trait Serialize {}

/// Marker trait; satisfied by everything (the derive emits no impl).
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
