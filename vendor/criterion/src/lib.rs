//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple calibrated timing loop (warm-up, then enough iterations to
//! fill a measurement window; median of several samples). No plots, no
//! statistics beyond the median and a spread estimate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — defeats constant folding around benchmarks.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Accepts `&str` or [`BenchmarkId`] wherever a benchmark is named.
pub trait IntoBenchmarkId {
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// (median, spread) nanoseconds per iteration, filled by `iter`.
    result_ns: (f64, f64),
}

const WARMUP: Duration = Duration::from_millis(150);
const WINDOW: Duration = Duration::from_millis(300);
const SAMPLES: usize = 7;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as f64 / iters.max(1) as f64;
        let batch = ((WINDOW.as_nanos() as f64 / SAMPLES as f64 / per_iter).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let spread = samples[samples.len() - 1] - samples[0];
        self.result_ns = (median, spread);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(full_name: &str, f: impl FnOnce(&mut Bencher)) -> f64 {
    let mut b = Bencher {
        result_ns: (f64::NAN, f64::NAN),
    };
    f(&mut b);
    let (median, spread) = b.result_ns;
    println!(
        "{full_name:<48} time: {:>12} (± {})",
        fmt_ns(median),
        fmt_ns(spread)
    );
    median
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// `(name, median ns/iter)` for every benchmark run so far.
    pub completed: Vec<(String, f64)>,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let median = run_one(name, |b| f(b));
        self.completed.push((name.to_string(), median));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        let median = run_one(&full, |b| f(b));
        self.parent.completed.push((full, median));
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        let median = run_one(&full, |b| f(b, input));
        self.parent.completed.push((full, median));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::new("retrieve", 64).into_name(), "retrieve/64");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
    }
}
