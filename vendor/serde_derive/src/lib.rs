//! Offline stand-in for `serde_derive`.
//!
//! The workspace runs in containers with no registry access, and nothing
//! in the codebase actually serializes — the derives exist so types stay
//! wire-ready. Both derives therefore expand to an empty token stream,
//! which is a valid (if vacuous) derive expansion.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
