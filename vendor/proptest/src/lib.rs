//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `boxed`, [`prop_oneof!`],
//! [`arbitrary::any`], regex-subset string strategies (`"[a-z]{1,8}"`),
//! integer/float range strategies, [`collection::vec`] /
//! [`collection::hash_set`], and [`sample::select`] / [`sample::Index`].
//!
//! Failing cases are *not* shrunk — the failing case's panic simply
//! propagates, prefixed with the case number. Each test function runs
//! `ProptestConfig::cases` random cases from a seed derived from the
//! test name, so runs are deterministic.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 128 }
        }
    }

    /// Panic payload used by `prop_assume!` to reject a case.
    pub struct Rejected;

    /// Deterministic generator used to drive strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }

        /// Seed derived from the test's name, so each proptest function
        /// explores an independent, reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for producing random values of `Self::Value`.
    ///
    /// Object-safe core (`new_value`); combinators require `Sized`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Uniform choice among equally-weighted alternative strategies
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        pub(crate) arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].new_value(rng)
        }
    }

    // ----- primitive strategies -----

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start() + (self.end() - self.start()) * rng.unit_f64()
        }
    }

    /// String strategies from a regex subset: concatenations of literal
    /// characters and character classes `[a-z0-9_#]` with optional
    /// `{n}` / `{m,n}` quantifiers (e.g. `"[A-Za-z]{1,8}#[0-9]{4}"`).
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    struct Element {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Element> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut elements = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        set.push(chars[i + 1]);
                        i += 2;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range {lo}-{hi} in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad quantifier {{{min},{max}}} in {pattern:?}");
            elements.push(Element { choices, min, max });
        }
        elements
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for el in parse_pattern(pattern) {
            let n = el.min + rng.below(el.max - el.min + 1);
            for _ in 0..n {
                out.push(el.choices[rng.below(el.choices.len())]);
            }
        }
        out
    }

    // ----- tuple strategies -----

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy for `any::<T>()` of a primitive.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Strategy for Any<super::sample::Index> {
        type Value = super::sample::Index;

        fn new_value(&self, rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index {
                raw: rng.next_u64() as usize,
            }
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use std::marker::PhantomData;

    /// `any::<T>()` — the canonical strategy for a type.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification: exact, `m..n`, or `m..=n`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max_inclusive - self.min + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec<V>`-producing strategy with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // Give duplicates a bounded number of retries so small
            // domains terminate with fewer than n elements.
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet<V>`-producing strategy with up to `size` elements.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A deferred index: generated raw, resolved against a length later.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        pub(crate) raw: usize,
    }

    impl Index {
        /// Resolve against a collection of the given non-zero length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.raw % len
        }
    }

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// Uniformly select one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

/// Run `cases` random cases of each property function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let __strategy = ($($strat,)+);
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases * 20 + 1000 {
                        panic!("proptest: too many cases rejected by prop_assume!");
                    }
                    let __case = __ran;
                    let __values =
                        $crate::strategy::Strategy::new_value(&__strategy, &mut __rng);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let ($($arg,)+) = __values;
                            $body
                        }),
                    );
                    match __outcome {
                        Ok(()) => {
                            __ran += 1;
                        }
                        Err(e) => {
                            if e.downcast_ref::<$crate::test_runner::Rejected>().is_some() {
                                continue; // prop_assume! rejection
                            }
                            eprintln!(
                                "proptest {}: case {} of {} failed",
                                stringify!($name), __case, __config.cases,
                            );
                            ::std::panic::resume_unwind(e);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Reject the current case (it does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::test_runner::Rejected);
        }
    };
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// The `prop::` alias (`prop::sample::select`, `prop::collection::vec`, …).
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn pattern_generator_respects_classes_and_counts() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-c]{1,3}#[01]{2}", &mut rng);
            let (head, tail) = s.split_once('#').expect("has separator");
            assert!((1..=3).contains(&head.len()), "{s}");
            assert!(head.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
            assert_eq!(tail.len(), 2, "{s}");
            assert!(tail.chars().all(|c| c == '0' || c == '1'), "{s}");
        }
    }

    #[test]
    fn trailing_dash_is_literal_in_class() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = Strategy::new_value(&"[a-b_-]{8}", &mut rng);
            assert!(s.chars().all(|c| matches!(c, 'a' | 'b' | '_' | '-')), "{s}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_machinery_works(v in prop::collection::vec(0..10u32, 0..8), b in any::<bool>()) {
            prop_assume!(v.len() != 7);
            prop_assert!(v.iter().all(|&x| x < 10));
            let _ = b;
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
