//! Integration tests of the PR-9 placement subsystem
//! ([`gridvine_core::place`]): a null (or inert) `PlacementPolicy`
//! reproduces the placement-free scheduler bit-for-bit (rows, stats,
//! RNG stream), a crashed replica owner degrades to a failover with
//! identical rows and zero recorded failures, heat spikes pull replicas
//! toward hot origins, mid-commit crashes roll provisioning back
//! atomically, and a churn storm over replicated predicates sheds no
//! sessions in the open-loop driver.

use gridvine_core::{
    GridVineConfig, GridVineSystem, PlacementPolicy, QueryOptions, QueryPlan, SpikeAction, Strategy,
};
use gridvine_load::{run_open_loop, ArrivalProcess, LoadConfig};
use gridvine_netsim::churn::{ChurnEvent, ChurnProcess};
use gridvine_netsim::{SimDuration, SimTime};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::Schema;
use proptest::prelude::*;

const PEERS: usize = 32;

/// A single-schema system under `policy`: three Aspergillus triples on
/// the one predicate `S0#a0`, so the data resolution is the only
/// replica-path request a query issues (mapping discovery still routes
/// to the schema-key owner the classic way).
fn replicated_system(policy: PlacementPolicy, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: PEERS,
        refs_per_level: 2,
        hash: gridvine_pgrid::HashKind::Uniform,
        placement: policy,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("S0", ["a0"])).unwrap();
    for i in 0..3 {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                "S0#a0",
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
    }
    sys
}

fn data_query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap()
}

fn options(window: usize) -> QueryOptions {
    QueryOptions::new()
        .strategy(Strategy::Iterative)
        .window(window)
        .max_retries(3)
}

/// First peer index that holds no copy of the data key (the failover
/// tests issue from it so the ranked holder list never starts at the
/// origin itself).
fn outside_origin(holders: &[PeerId]) -> PeerId {
    (0..PEERS as u32)
        .map(PeerId)
        .find(|p| !holders.contains(p))
        .expect("the replica set never covers all peers")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The null-policy acceptance bar, for windows 1 and 4: a policy
    /// whose rules match nothing in the workload takes the replica
    /// path exactly never, so rows, stats and the shared RNG stream
    /// are bit-identical to the default (null) policy — which is
    /// itself the PR-8 scheduler unchanged.
    #[test]
    fn inert_policy_is_bit_identical_to_null(seed in 0u64..500) {
        for window in [1usize, 4] {
            let plan = QueryPlan::search(data_query());
            let mut null = replicated_system(PlacementPolicy::default(), seed);
            let origin = outside_origin(&null.replica_holders("S0#a0"));
            let base = null.execute(origin, &plan, &options(window)).unwrap();

            let inert = PlacementPolicy::new().replicate("zzz-inert/", 3);
            let mut sys = replicated_system(inert, seed);
            let out = sys.execute(origin, &plan, &options(window)).unwrap();

            prop_assert_eq!(&out.rows, &base.rows);
            prop_assert_eq!(out.stats, base.stats);
            prop_assert_eq!(out.stats.replica_hits, 0);
            prop_assert_eq!(null.pending_events(), 0);
            prop_assert_eq!(sys.pending_events(), 0);
            // Same RNG stream afterwards: the inert policy consumed
            // exactly the draws the null policy did (none extra).
            for _ in 0..8 {
                prop_assert_eq!(null.random_peer(), sys.random_peer());
            }
        }
    }

    /// The failover acceptance bar: with replication factor ≥ 2,
    /// crashing one replica owner yields bit-identical rows to the
    /// fault-free run with zero recorded failures — only messages and
    /// the failover counter may differ — and the shared RNG stream is
    /// untouched by the crash.
    #[test]
    fn crashed_replica_owner_fails_over_with_identical_rows(
        seed in 0u64..300,
        factor in 2usize..5,
        window in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let policy = PlacementPolicy::new().replicate("S0#", factor);
        let plan = QueryPlan::search(data_query());

        let mut clean = replicated_system(policy.clone(), seed);
        let holders = clean.replica_holders("S0#a0");
        prop_assume!(holders.len() >= 2);
        let origin = outside_origin(&holders);
        // Under the flat latency model every holder ranks equal, ties
        // broken by index — so the lowest-index holder serves first
        // and crashing it forces a failover.
        let victim = *holders.iter().min_by_key(|p| p.0).unwrap();
        // Keep the classic-path mapping discovery identical across the
        // two runs: the victim must not own the schema key.
        prop_assume!(!clean.replica_holders("S0").contains(&victim));

        let base = clean.execute(origin, &plan, &options(window)).unwrap();

        let mut faulty = replicated_system(policy, seed);
        faulty.crash_peer(victim);
        let out = faulty.execute(origin, &plan, &options(window)).unwrap();

        prop_assert_eq!(base.rows.len(), 3);
        prop_assert_eq!(&out.rows, &base.rows);
        prop_assert_eq!(base.stats.failures, 0);
        prop_assert_eq!(out.stats.failures, 0);
        prop_assert_eq!(base.stats.failovers, 0);
        prop_assert!(out.stats.failovers >= 1, "stats: {:?}", out.stats);
        prop_assert_eq!(out.stats.replica_hits, base.stats.replica_hits);
        prop_assert!(base.stats.replica_hits >= 1);
        prop_assert_eq!(clean.pending_events(), 0);
        prop_assert_eq!(faulty.pending_events(), 0);
        for _ in 0..8 {
            prop_assert_eq!(clean.random_peer(), faulty.random_peer());
        }
    }

    /// Crashing *every* holder finally surfaces `PeerDown` — failover
    /// degrades gracefully but does not fabricate availability.
    #[test]
    fn all_holders_down_still_fails(seed in 0u64..100) {
        let policy = PlacementPolicy::new().replicate("S0#", 3);
        let mut sys = replicated_system(policy, seed);
        let holders = sys.replica_holders("S0#a0");
        let origin = outside_origin(&holders);
        for h in holders {
            sys.crash_peer(h);
        }
        let out = sys
            .execute(origin, &QueryPlan::search(data_query()), &options(1))
            .unwrap();
        prop_assert!(out.rows.is_empty());
        prop_assert!(out.stats.failures >= 1, "stats: {:?}", out.stats);
        prop_assert_eq!(sys.pending_events(), 0);
    }
}

/// A heat spike on a hot key pulls a replica onto the hot origin: under
/// the flat latency model the origin itself is the cheapest non-holder
/// (expected latency zero), so repeated reads replicate the data next
/// to the reader and later reads serve locally.
#[test]
fn heat_spike_replicates_toward_hot_origin() {
    let policy = PlacementPolicy::new()
        .replicate("S0#", 1)
        .heat(3, SimDuration::from_secs(5));
    let mut sys = replicated_system(policy, 7);
    let origin = outside_origin(&sys.replica_holders("S0#a0"));
    let plan = QueryPlan::search(data_query());

    assert!(sys.heat_spikes().is_empty());
    let mut outs = Vec::new();
    for _ in 0..4 {
        outs.push(sys.execute(origin, &plan, &options(1)).unwrap());
    }
    for o in &outs {
        assert_eq!(o.rows.len(), 3);
    }
    let spikes = sys.heat_spikes();
    assert!(!spikes.is_empty(), "three reads within the window spike");
    assert_eq!(
        spikes[0].action,
        SpikeAction::Replicate(origin),
        "the hot origin is the cheapest non-holder"
    );
    assert!(sys.replica_holders("S0#a0").contains(&origin));
    assert!(sys.replica_counters().migrations >= 1);
    let migrated: u64 = outs.iter().map(|o| o.stats.migrations as u64).sum();
    assert!(migrated >= 1, "the spike charged to a serving unit");
    // Once local, the read is free of response messages: the last
    // query moves fewer messages than the first.
    let first = outs.first().unwrap().stats.messages;
    let last = outs.last().unwrap().stats.messages;
    assert!(
        last < first,
        "local replica serves cheaper: {first} -> {last}"
    );
}

/// Replica provisioning is atomic in the `commit_mapping_copies` style:
/// a crash armed to fire mid-fan-out rolls every written copy back —
/// including the σ-owner writes — so no holder serves rows a failed
/// insert half-placed.
#[test]
fn commit_crash_rolls_back_fan_out() {
    let seed = 11;
    // Learn the natural σ-group size from a null-policy twin (same
    // seed → same topology), then size the factor for two extras.
    let null = replicated_system(PlacementPolicy::default(), seed);
    let owners = null.replica_holders("S0#a0");
    let factor = owners.len() + 2;

    let policy = PlacementPolicy::new().replicate("S0#", factor);
    let mut sys = replicated_system(policy, seed);
    let holders = sys.replica_holders("S0#a0");
    assert_eq!(holders.len(), factor, "provisioned up to the factor");
    // holders_of lists σ owners first, then extras in commit order:
    // the second extra crashes after the first already took the write.
    let victim = holders[owners.len() + 1];
    let origin = outside_origin(&holders);

    sys.arm_commit_crash(victim);
    let err = sys.insert_triple(
        PeerId(0),
        Triple::new("seq:R9", "S0#a0", Term::literal("Aspergillus oryzae")),
    );
    assert!(err.is_err(), "mid-commit crash fails the insert");

    // Every surviving holder still serves exactly the three original
    // rows — the half-written fourth rolled back everywhere.
    let out = sys
        .execute(origin, &QueryPlan::search(data_query()), &options(1))
        .unwrap();
    assert_eq!(out.rows.len(), 3, "rows: {:?}", out.rows);
    assert_eq!(out.stats.failures, 0);
    sys.recover_peer(victim);
    let after = sys
        .execute(origin, &QueryPlan::search(data_query()), &options(1))
        .unwrap();
    assert_eq!(after.rows.len(), 3);
}

/// A correlated churn storm over a replicated predicate sheds no
/// sessions in the open-loop driver: every submitted session completes
/// (the retry protocol and replica failover ride out the outages), and
/// the replica path actually served traffic.
#[test]
fn churn_storm_over_replicated_predicate_sheds_no_sessions() {
    let seed = 3;
    let policy = PlacementPolicy::new().replicate("S0#", 4);
    let mut sys = replicated_system(policy, seed);
    let origins = 4usize;
    // Half the peers fail just after the run starts and recover within
    // a few simulated milliseconds — inside the retry budget. The
    // issuing origins stay up (the storm models remote failures).
    let storm = ChurnProcess::storm(PEERS, 0.5, SimTime::ZERO, SimDuration::from_millis(4), seed);
    let events: Vec<ChurnEvent> = storm
        .events()
        .iter()
        .filter(|e| e.node.index() >= origins)
        .copied()
        .collect();
    sys.install_churn(&events);

    let plans = vec![QueryPlan::search(data_query())];
    let cfg = LoadConfig {
        sessions: 40,
        arrivals: ArrivalProcess::Deterministic {
            gap: SimDuration::from_micros(200),
        },
        origins,
        max_concurrent: 8,
        queue_capacity: 40,
        message_budget: None,
        deadline: None,
        seed,
        ..LoadConfig::default()
    };
    let r = run_open_loop(&mut sys, &plans, &cfg);
    assert_eq!(r.submitted, 40);
    assert_eq!(r.failed, 0, "no session sheds: {r}");
    assert_eq!(r.rejected, 0, "generous queue rejects nothing: {r}");
    assert_eq!(r.completed, 40, "every session completes: {r}");
    assert!(
        sys.replica_counters().replica_hits > 0,
        "the replica path served the run: {}",
        sys.replica_counters()
    );
    assert_eq!(sys.pending_events(), 0);
}
