//! Integration tests of the PR-8 concurrent-session multiplexer
//! ([`gridvine_core::pool::SessionPool`]) and the open-loop traffic
//! driver ([`gridvine_load`]): a pool of one session must reproduce the
//! standalone scheduler bit-for-bit (rows, stats, RNG stream),
//! interleaved sessions must match their sequential runs wherever
//! routing is RNG-value-invariant, and cancelled / rejected /
//! deadline-expired sessions must leave no queued events behind while
//! charging every overlay message exactly once.

use gridvine_core::pool::SessionPool;
use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryOutcome, QueryPlan, Strategy,
};
use gridvine_load::{run_open_loop, ArrivalProcess, LoadConfig};
use gridvine_netsim::{FaultConfig, SimDuration};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
use proptest::prelude::*;

/// The 4-schema equivalence chain of `fault_protocol.rs`, with the
/// reference-density knob exposed: `refs_per_level: 1` topologies have
/// exactly one routing candidate per trie level, which makes routes
/// independent of the values the shared RNG yields — the contract the
/// interleaving proptests lean on.
fn chain_system(refs_per_level: usize, fault: FaultConfig, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        refs_per_level,
        hash: gridvine_pgrid::HashKind::Uniform,
        fault,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..4 {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
    }
    for i in 0..3 {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    for i in 0..4 {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
    }
    sys
}

fn chain_query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap()
}

fn options(window: usize) -> QueryOptions {
    QueryOptions::new()
        .strategy(Strategy::Iterative)
        .window(window)
        .max_retries(3)
}

/// Drain a pool to completion and hand back the outcomes in the order
/// the sessions were opened.
fn drain(
    sys: &mut GridVineSystem,
    pool: &mut SessionPool,
    ids: &[gridvine_core::pool::SessionId],
) -> Vec<QueryOutcome> {
    while pool.step(sys).is_some() {}
    ids.iter()
        .map(|&id| {
            pool.take_outcome(id)
                .expect("drained session has an outcome")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The PR-8 acceptance bar: a pool containing exactly one session
    /// is bit-identical to the standalone scheduler for windows 1 and
    /// 4 — same rows, same stats, and the shared RNG is left in the
    /// same state (witnessed by the next draws matching).
    #[test]
    fn pool_of_one_is_bit_identical_to_standalone(seed in 0u64..500) {
        for window in [1usize, 4] {
            let plan = QueryPlan::search(chain_query());
            let mut solo = chain_system(2, FaultConfig::none(), seed);
            let base = solo
                .execute(PeerId(5), &plan, &options(window))
                .unwrap();

            let mut pooled = chain_system(2, FaultConfig::none(), seed);
            let mut pool = SessionPool::new();
            let id = pool
                .open(&mut pooled, PeerId(5), &plan, &options(window))
                .unwrap();
            let out = drain(&mut pooled, &mut pool, &[id]).pop().unwrap();

            prop_assert_eq!(&out.rows, &base.rows);
            prop_assert_eq!(out.stats, base.stats);
            prop_assert_eq!(solo.pending_events(), 0);
            prop_assert_eq!(pooled.pending_events(), 0);
            // Same RNG stream afterwards: the pool consumed exactly the
            // draws the standalone run did.
            for _ in 0..8 {
                prop_assert_eq!(solo.random_peer(), pooled.random_peer());
            }
        }
    }

    /// On `refs_per_level: 1` topologies (routes RNG-value-invariant),
    /// N sessions interleaved through one pool yield exactly the rows
    /// and stats each yields when run sequentially standalone.
    #[test]
    fn interleaved_sessions_match_sequential(
        seed in 0u64..200,
        n in 2usize..5,
        window in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let plan = QueryPlan::search(chain_query());
        let origins: Vec<PeerId> = (0..n).map(|k| PeerId(5 + k as u32)).collect();

        let mut seq = chain_system(1, FaultConfig::none(), seed);
        let sequential: Vec<QueryOutcome> = origins
            .iter()
            .map(|&o| seq.execute(o, &plan, &options(window)).unwrap())
            .collect();

        let mut sys = chain_system(1, FaultConfig::none(), seed);
        let mut pool = SessionPool::new();
        let ids: Vec<_> = origins
            .iter()
            .map(|&o| pool.open(&mut sys, o, &plan, &options(window)).unwrap())
            .collect();
        let interleaved = drain(&mut sys, &mut pool, &ids);

        for (s, i) in sequential.iter().zip(&interleaved) {
            prop_assert_eq!(&s.rows, &i.rows);
            prop_assert_eq!(s.stats, i.stats);
        }
        prop_assert_eq!(sys.pending_events(), 0);
    }

    /// On default-density topologies interleaving may legally permute
    /// RNG draws across sessions, but the pool stays deterministic
    /// (same seed → identical per-session outcome) and every session's
    /// send accounting closes.
    #[test]
    fn interleaving_is_deterministic_on_default_topology(
        seed in 0u64..200,
        n in 2usize..5,
        window in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let plan = QueryPlan::search(chain_query());
        let run = |seed: u64| {
            let mut sys = chain_system(2, FaultConfig::none(), seed);
            let mut pool = SessionPool::new();
            let ids: Vec<_> = (0..n)
                .map(|k| {
                    pool.open(&mut sys, PeerId(5 + k as u32), &plan, &options(window))
                        .unwrap()
                })
                .collect();
            let outs = drain(&mut sys, &mut pool, &ids);
            assert_eq!(sys.pending_events(), 0);
            outs
        };
        let a = run(seed);
        let b = run(seed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.rows, &y.rows);
            prop_assert_eq!(x.stats, y.stats);
            prop_assert_eq!(
                x.stats.sends,
                x.stats.requests + x.stats.retransmits,
                "stats: {:?}", x.stats
            );
        }
    }

    /// Cancelling a session mid-flight — under reply duplication, so
    /// queued copies exist — drops exactly its replies: the survivors
    /// finish, the event queues end empty, and the sum of per-session
    /// message charges equals the overlay's own counter (no session is
    /// double-charged, cancelled work stays charged once).
    #[test]
    fn cancel_conserves_messages_and_leaves_no_residue(
        seed in 0u64..200,
        dup in 0.0f64..1.0,
        steps in 0usize..6,
    ) {
        let mut cfg = FaultConfig::none();
        cfg.duplication = dup;
        let plan = QueryPlan::search(chain_query());
        let mut sys = chain_system(2, cfg, seed);
        let m0 = sys.messages_sent();

        let mut pool = SessionPool::new();
        let ids: Vec<_> = (0..3)
            .map(|k| {
                pool.open(&mut sys, PeerId(5 + k as u32), &plan, &options(4))
                    .unwrap()
            })
            .collect();
        for _ in 0..steps {
            if pool.step(&mut sys).is_none() {
                break;
            }
        }
        pool.cancel(&mut sys, ids[0]);
        let outs = drain(&mut sys, &mut pool, &ids);

        let charged: u64 = outs.iter().map(|o| o.stats.messages).sum();
        prop_assert_eq!(charged, sys.messages_sent() - m0);
        for o in &outs {
            prop_assert_eq!(
                o.stats.sends,
                o.stats.requests + o.stats.retransmits,
                "stats: {:?}", o.stats
            );
        }
        prop_assert_eq!(sys.pending_events(), 0);
    }

    /// The open-loop driver under overload: rejected and
    /// deadline-cancelled sessions leave `pending_events() == 0` and
    /// the report's message total equals the overlay counter — nothing
    /// is double-charged through the cancel paths and nothing leaks.
    #[test]
    fn open_loop_overload_accounts_every_message(
        seed in 0u64..100,
        gap_us in 1u64..40,
        deadline_ms in 1u64..20,
    ) {
        let mut sys = chain_system(2, FaultConfig::none(), seed);
        let m0 = sys.messages_sent();
        let plans = vec![QueryPlan::search(chain_query())];
        let cfg = LoadConfig {
            sessions: 30,
            arrivals: ArrivalProcess::Deterministic {
                gap: SimDuration::from_micros(gap_us),
            },
            origins: 4,
            max_concurrent: 2,
            queue_capacity: 2,
            deadline: Some(SimDuration::from_millis(deadline_ms)),
            seed,
            ..LoadConfig::default()
        };
        let r = run_open_loop(&mut sys, &plans, &cfg);
        prop_assert_eq!(r.submitted, 30);
        prop_assert_eq!(
            r.completed + r.failed + r.cancelled_deadline + r.cancelled_budget
                + r.rejected + r.refused,
            30,
            "every session in exactly one bucket: {}", r
        );
        prop_assert_eq!(r.messages, sys.messages_sent() - m0);
        prop_assert_eq!(sys.pending_events(), 0);
    }
}
