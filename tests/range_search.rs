//! Integration tests for prefix/range search over the order-preserving
//! hash (§2.2): the range access path must agree with the predicate-key
//! access path and with a centralized oracle, must refuse unroutable
//! shapes, and must be unavailable under a uniform hash.
//!
//! The range path runs through the plan surface
//! (`QueryPlan::object_prefix` + `execute`).

use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, SystemError};
use gridvine_pgrid::{HashKind, PeerId};
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::Schema;
use proptest::prelude::*;

fn system_with(values: &[String], hash: HashKind) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        hash,
        seed: 0x9A,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("S", ["v"])).unwrap();
    for (i, v) in values.iter().enumerate() {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("e:{i:04}").as_str(),
                "S#v",
                Term::literal(v.as_str()),
            ),
        )
        .unwrap();
    }
    sys
}

/// Range search through the plan surface; returns the distinct terms
/// of the distinguished variable (the legacy entry point's shape).
fn object_prefix(
    sys: &mut GridVineSystem,
    origin: PeerId,
    q: &TriplePatternQuery,
) -> Result<Vec<Term>, SystemError> {
    let out = sys.execute(
        origin,
        &QueryPlan::object_prefix(q.clone()),
        &QueryOptions::default(),
    )?;
    Ok(out.terms(&q.distinguished))
}

fn prefix_query(prefix: &str) -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S#v")),
            PatternTerm::constant(Term::literal(format!("{prefix}%"))),
        ),
    )
    .unwrap()
}

#[test]
fn prefix_search_matches_oracle() {
    let values: Vec<String> = [
        "Aspergillus niger",
        "Aspergillus oryzae",
        "Aspergillosis note", // shares a shorter prefix only
        "Escherichia coli",
        "Aspergillus",       // exact boundary: equals the prefix itself
        "aspergillus lower", // case-sensitive: must NOT match
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut sys = system_with(&values, HashKind::OrderPreserving);
    let q = prefix_query("Aspergillus");
    let results = object_prefix(&mut sys, PeerId(9), &q).unwrap();
    let expected: usize = values
        .iter()
        .filter(|v| v.starts_with("Aspergillus"))
        .count();
    assert_eq!(results.len(), expected);
    assert_eq!(expected, 3);
}

#[test]
fn range_and_predicate_paths_agree() {
    let values: Vec<String> = (0..40)
        .map(|i| {
            if i % 3 == 0 {
                format!("Aspergillus strain {i}")
            } else {
                format!("Bacillus subtilis {i}")
            }
        })
        .collect();
    let mut sys = system_with(&values, HashKind::OrderPreserving);
    let q = prefix_query("Aspergillus");
    let via_range = object_prefix(&mut sys, PeerId(3), &q).unwrap();
    let via_predicate = sys
        .execute(
            PeerId(3),
            &QueryPlan::pattern(q.clone()),
            &QueryOptions::default(),
        )
        .unwrap()
        .terms(&q.distinguished);
    assert_eq!(via_range, via_predicate);
    assert_eq!(
        via_range.len(),
        values.iter().filter(|v| v.starts_with("Asp")).count()
    );
}

#[test]
fn uniform_hash_refuses_range_search() {
    let mut sys = system_with(&["Aspergillus niger".to_string()], HashKind::Uniform);
    let q = prefix_query("Aspergillus");
    assert_eq!(
        object_prefix(&mut sys, PeerId(0), &q),
        Err(SystemError::NotRoutable)
    );
}

#[test]
fn non_prefix_shapes_are_refused() {
    let mut sys = system_with(
        &["Aspergillus niger".to_string()],
        HashKind::OrderPreserving,
    );
    for object in ["%Aspergillus%", "Aspergillus", "%", "As%per%"] {
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S#v")),
                PatternTerm::constant(Term::literal(object)),
            ),
        )
        .unwrap();
        assert_eq!(
            object_prefix(&mut sys, PeerId(0), &q),
            Err(SystemError::NotRoutable),
            "shape {object:?} must be refused"
        );
    }
    // A variable object has no range either.
    let q = TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S#v")),
            PatternTerm::var("o"),
        ),
    )
    .unwrap();
    assert_eq!(
        object_prefix(&mut sys, PeerId(0), &q),
        Err(SystemError::NotRoutable)
    );
}

#[test]
fn empty_region_returns_no_results() {
    let mut sys = system_with(
        &["Escherichia coli".to_string(), "Zea mays".to_string()],
        HashKind::OrderPreserving,
    );
    let q = prefix_query("Aspergillus");
    let results = object_prefix(&mut sys, PeerId(1), &q).unwrap();
    assert!(results.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For random corpora and prefixes, the range search returns exactly
    /// the subjects whose object value starts with the prefix.
    #[test]
    fn prefix_search_equals_startswith_filter(
        values in prop::collection::vec("[A-Za-z]{1,12}", 1..30),
        prefix in "[A-Za-z]{1,4}",
    ) {
        let mut sys = system_with(&values, HashKind::OrderPreserving);
        let q = prefix_query(&prefix);
        let results = object_prefix(&mut sys, PeerId(2), &q).unwrap();
        let expected: usize = values.iter().filter(|v| v.starts_with(&prefix)).count();
        prop_assert_eq!(results.len(), expected);
    }
}
