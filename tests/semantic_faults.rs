//! Integration tests of the PR-7 semantic fault matrix: the
//! mediation-layer adversary ([`gridvine_semantic::adversary`]) gossips
//! stale, corrupted and Byzantine mappings into the network, Bayesian
//! assessment passes quarantine them, mediation commits are atomic
//! under crash injection, and query answers re-converge to the
//! fault-free ground truth — even when a mass-churn storm overlaps the
//! self-organization loop.

use std::collections::BTreeSet;

use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryOutcome, QueryPlan, ResultEvent,
    SelfOrgConfig, Strategy, SystemError,
};
use gridvine_netsim::churn::{ChurnEvent, ChurnProcess};
use gridvine_netsim::{SimDuration, SimTime};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{
    BayesConfig, Correspondence, MappingId, MappingKind, Provenance, Schema, SchemaId,
    SemanticFaultConfig,
};
use proptest::prelude::*;

const ORIGIN: PeerId = PeerId(5);

const RING: usize = 5;

/// A 5-schema equivalence ring (S0 → S1 → … → S4 → S0) with two
/// attributes per schema, one Aspergillus triple per schema *and* one
/// decoy triple per schema on the b-attribute, plus a *deprecated*
/// wrong shortcut edge S0 → S2 so the stale-gossip dimension has a
/// candidate. The geometry makes injected faults genuinely harmful: a
/// resurrected shortcut reaches S2 at closure depth 1 — before the
/// correct depth-2 path — so its wrong predicate translation both
/// pulls in decoy rows and shadows the correct row. The ring keeps
/// every edge on short mapping cycles, which is what gives the
/// Bayesian analysis its evidence.
fn ring_system(semantic: SemanticFaultConfig, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        hash: gridvine_pgrid::HashKind::Uniform,
        semantic_fault: semantic,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..RING {
        sys.insert_schema(
            p0,
            Schema::new(format!("S{i}").as_str(), [format!("a{i}"), format!("b{i}")]),
        )
        .unwrap();
    }
    for i in 0..RING {
        let j = (i + 1) % RING;
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{j}").as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new(format!("a{i}"), format!("a{j}")),
                Correspondence::new(format!("b{i}"), format!("b{j}")),
            ],
        )
        .unwrap();
    }
    // The decoy: a wrong shortcut, already retired. Stale gossip can
    // resurrect copies of it.
    let decoy = sys
        .insert_mapping(
            p0,
            "S0",
            "S2",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![
                Correspondence::new("a0", "b2"),
                Correspondence::new("b0", "a2"),
            ],
        )
        .unwrap();
    sys.deprecate_mapping(p0, decoy).unwrap();
    for i in 0..RING {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
        // Bait: a wrong correspondence that mistranslates the query
        // predicate onto the b-attribute picks these up as wrong rows.
        // Two decoys per attribute mean a wrong hop changes the row
        // count as well as the row identities.
        for d in ["D", "E"] {
            sys.insert_triple(
                p0,
                Triple::new(
                    format!("seq:{d}{i}").as_str(),
                    format!("S{i}#b{i}").as_str(),
                    Term::literal("Aspergillus decoy"),
                ),
            )
            .unwrap();
        }
    }
    sys
}

fn ring_query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap()
}

fn run(sys: &mut GridVineSystem, window: usize) -> QueryOutcome {
    let plan = QueryPlan::search(ring_query());
    let options = QueryOptions::new()
        .strategy(Strategy::Iterative)
        .window(window)
        .max_retries(8);
    sys.execute(ORIGIN, &plan, &options).unwrap()
}

/// Schemas reachable from `from` over *active* mappings only
/// (equivalence edges are walkable in both directions) — the ground
/// truth a closure walk must never exceed.
fn active_reachable(sys: &GridVineSystem, from: &SchemaId) -> BTreeSet<SchemaId> {
    let mut seen: BTreeSet<SchemaId> = BTreeSet::from([from.clone()]);
    let mut frontier = vec![from.clone()];
    while let Some(s) = frontier.pop() {
        for m in sys.registry().active_mappings() {
            let next = if m.source == s {
                Some(m.target.clone())
            } else if m.target == s && m.kind == MappingKind::Equivalence {
                Some(m.source.clone())
            } else {
                None
            };
            if let Some(n) = next {
                if seen.insert(n.clone()) {
                    frontier.push(n);
                }
            }
        }
    }
    seen
}

#[test]
fn crash_mid_commit_is_atomic_end_to_end() {
    // Build the mapping chain one edge at a time and crash the target
    // key space's responsible peer in the middle of the last commit:
    // the commit must roll back entirely, queries must keep answering
    // from the committed prefix, and the recovery scan must find
    // nothing half-live to repair.
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        hash: gridvine_pgrid::HashKind::Uniform,
        seed: 7,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..4 {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
    }
    let edge = |sys: &mut GridVineSystem, i: usize| {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
    };
    edge(&mut sys, 0).unwrap();
    edge(&mut sys, 1).unwrap();
    let target_key = sys.key_of("S3");
    let victim = *sys.topology().responsible(&target_key).first().unwrap();
    sys.arm_commit_crash(victim);
    let res = edge(&mut sys, 2);
    assert!(matches!(res, Err(SystemError::PeerDown(_))), "{res:?}");
    assert_eq!(sys.registry().mapping_count(), 2, "failed commit retracted");

    sys.recover_peer(victim);
    let recovery = sys.recover_mapping_commits(p0).unwrap();
    assert_eq!(recovery.repaired_copies, 0, "no half-live copy to repair");
    let at_s3 = sys
        .mappings_at_schema(PeerId(1), &SchemaId::new("S3"))
        .unwrap();
    assert!(at_s3.is_empty(), "{at_s3:?}");
    let out = run(&mut sys, 4);
    assert_eq!(out.rows.len(), 3, "the committed prefix still answers");

    // The retry commits cleanly and the full chain answers.
    edge(&mut sys, 2).unwrap();
    let out = run(&mut sys, 4);
    assert_eq!(out.rows.len(), 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A null `SemanticFaultConfig` — even spelled out field by field,
    /// with null gossip rounds interleaved between queries — reproduces
    /// the PR-6 scheduler bit-for-bit: same rows, same stats, no
    /// randomness consumed.
    #[test]
    fn null_semantic_fault_config_is_bit_identical(seed in 0u64..300) {
        for window in [1usize, 4] {
            let mut plain = ring_system(SemanticFaultConfig::none(), seed);
            let base1 = run(&mut plain, window);
            let base2 = run(&mut plain, window);
            prop_assert_eq!(base1.rows.len(), RING);

            let mut nulled = ring_system(
                SemanticFaultConfig {
                    stale: 0.0,
                    corrupt: 0.0,
                    byzantine: 0.0,
                    adversaries: vec![],
                },
                seed,
            );
            for _ in 0..3 {
                prop_assert!(nulled.adversary_gossip(PeerId(0)).unwrap().is_empty());
            }
            let out1 = run(&mut nulled, window);
            for _ in 0..2 {
                prop_assert!(nulled.adversary_gossip(PeerId(0)).unwrap().is_empty());
            }
            let out2 = run(&mut nulled, window);
            prop_assert_eq!(&out1.rows, &base1.rows);
            prop_assert_eq!(out1.stats, base1.stats);
            prop_assert_eq!(&out2.rows, &base2.rows);
            prop_assert_eq!(out2.stats, base2.stats);
        }
    }

    /// The tentpole invariant: under adversary rates ≤ 0.2 — with a
    /// mass-churn storm overlapping the self-organization round — enough
    /// assessment passes quarantine every harmful injected edge and the
    /// query rows re-converge to the fault-free ground truth.
    #[test]
    fn bounded_adversary_reconverges_to_ground_truth(
        seed in 0u64..200,
        stale in 0.0f64..=0.2,
        corrupt in 0.0f64..=0.2,
        byzantine in 0.0f64..=0.2,
    ) {
        let mut clean = ring_system(SemanticFaultConfig::none(), seed);
        let base = run(&mut clean, 4);
        prop_assert_eq!(base.rows.len(), RING);

        let mut sys = ring_system(
            SemanticFaultConfig {
                stale,
                corrupt,
                byzantine,
                adversaries: vec![7],
            },
            seed,
        );
        // A correlated storm: half the peers fail at time zero and
        // recover within a few simulated milliseconds — the retry
        // protocol and the mediation layer must both ride it out.
        let storm = ChurnProcess::storm(32, 0.5, SimTime::ZERO, SimDuration::from_millis(4), seed);
        let events: Vec<ChurnEvent> = storm
            .events()
            .iter()
            .filter(|e| e.node.index() != ORIGIN.index())
            .copied()
            .collect();
        sys.install_churn(&events);

        for _ in 0..6 {
            sys.adversary_gossip(PeerId(0)).unwrap();
        }
        // Self-repair: the self-organization round and dedicated
        // assessment passes both judge the network; either is allowed
        // to retire an injected edge.
        sys.self_organization_round(&SelfOrgConfig::default()).unwrap();
        let bayes = BayesConfig::default();
        for _ in 0..3 {
            sys.assessment_pass(ORIGIN, &bayes).unwrap();
        }
        let out = run(&mut sys, 4);
        prop_assert_eq!(
            &out.rows, &base.rows,
            "injected: {:?}", sys.semantic_fault_counters()
        );
    }

    /// The satellite invariant: no closure cache ever replays a hop
    /// through a non-active mapping. Random quarantine / reactivate
    /// flips (every one bumps the registry epoch) interleave with
    /// queries; every `SchemaHop` the session reports must stay within
    /// the schemas reachable over currently-active mappings.
    #[test]
    fn closure_cache_never_replays_an_inactive_hop(
        seed in 0u64..200,
        ops in proptest::collection::vec(0usize..8, 1..10),
    ) {
        let mut sys = ring_system(SemanticFaultConfig::none(), seed);
        let p0 = PeerId(0);
        let ids: Vec<MappingId> = sys.registry().mappings().map(|m| m.id).collect();
        // Warm the origin's closure cache so later queries would love
        // to replay it.
        run(&mut sys, 1);
        for op in ops {
            let id = ids[op % ids.len()];
            if op < 4 {
                sys.quarantine_mapping(p0, id).unwrap();
            } else {
                sys.reactivate_mapping(p0, id).unwrap();
            }
            let reachable = active_reachable(&sys, &SchemaId::new("S0"));
            let plan = QueryPlan::search(ring_query());
            let options = QueryOptions::new().strategy(Strategy::Iterative);
            let mut session = sys.open(ORIGIN, &plan, &options).unwrap();
            while let Some(event) = session.next_event().unwrap() {
                if let ResultEvent::SchemaHop { schema, .. } = event {
                    prop_assert!(
                        reachable.contains(&schema),
                        "hop to {schema} with only {reachable:?} active"
                    );
                }
            }
        }
    }
}
