//! Integration tests of the PR-6 request/response protocol: the
//! scheduler's timeout–retry–backoff machinery over the fault model
//! ([`gridvine_netsim::fault`]) must degrade gracefully — duplicate
//! replies never double-charge, bounded retries never hang, lossless
//! configs reproduce the fault-free scheduler bit-for-bit, and churned
//! peers are survived by retrying past their downtime.

use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryOutcome, QueryPlan, Strategy,
};
use gridvine_netsim::churn::{ChurnEvent, ChurnKind};
use gridvine_netsim::{FaultConfig, LinkFault, NodeId, SimDuration, SimTime};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
use proptest::prelude::*;

/// A 4-schema equivalence chain with one Aspergillus triple per
/// schema: the closure walk fans out over several routed units, which
/// is what the retry protocol needs exercising.
fn chain_system(fault: FaultConfig, seed: u64) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        hash: gridvine_pgrid::HashKind::Uniform,
        fault,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..4 {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
    }
    for i in 0..3 {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    for i in 0..4 {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
    }
    sys
}

fn chain_query() -> TriplePatternQuery {
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("S0#a0")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap()
}

fn run(sys: &mut GridVineSystem, window: usize, max_retries: usize) -> QueryOutcome {
    let plan = QueryPlan::search(chain_query());
    let options = QueryOptions::new()
        .strategy(Strategy::Iterative)
        .window(window)
        .max_retries(max_retries);
    sys.execute(PeerId(5), &plan, &options).unwrap()
}

#[test]
fn churned_destination_is_survived_by_retrying_past_recovery() {
    // Every peer but the origin is down when the session starts and
    // recovers 8 simulated milliseconds in. The base reply timeout is
    // 5ms with exponential backoff, so the first attempt (and usually
    // the second) of each early unit times out, and a later retransmit
    // lands after recovery: the session must answer in full — same
    // rows as the undisturbed run — while recording the timeouts and
    // retransmits it paid.
    let origin = PeerId(5);
    let mut healthy = chain_system(FaultConfig::none(), 7);
    let full = run(&mut healthy, 4, 8);
    assert_eq!(full.rows.len(), 4);
    assert_eq!(full.stats.timeouts, 0);

    let mut sys = chain_system(FaultConfig::none(), 7);
    let events: Vec<ChurnEvent> = (0..32)
        .filter(|&i| i != origin.index())
        .flat_map(|i| {
            [
                ChurnEvent {
                    at: SimTime::ZERO,
                    node: NodeId::from_index(i),
                    kind: ChurnKind::Fail,
                },
                ChurnEvent {
                    at: SimTime::ZERO + SimDuration::from_millis(8),
                    node: NodeId::from_index(i),
                    kind: ChurnKind::Recover,
                },
            ]
        })
        .collect();
    sys.install_churn(&events);
    let churned = run(&mut sys, 4, 8);
    assert_eq!(churned.rows, full.rows, "retries recover the full answer");
    assert_eq!(churned.stats.failures, 0, "{:?}", churned.stats);
    assert!(churned.stats.timeouts > 0, "downtime was actually hit");
    assert!(churned.stats.retransmits > 0);
    assert_eq!(
        churned.stats.sends,
        churned.stats.requests + churned.stats.retransmits
    );
    assert_eq!(sys.pending_events(), 0);
}

#[test]
fn churned_peer_without_recovery_fails_like_a_crash() {
    // A peer that never recovers exhausts the retry budget: the hop is
    // recorded as a failure and the session still terminates with the
    // reachable rows — graceful degradation, not a hang.
    let mut sys = chain_system(FaultConfig::none(), 7);
    let s3_key = sys.key_of("S3#a3");
    let victims: Vec<PeerId> = sys.topology().responsible(&s3_key).to_vec();
    let events: Vec<ChurnEvent> = victims
        .iter()
        .map(|v| ChurnEvent {
            at: SimTime::ZERO,
            node: NodeId::from_index(v.index()),
            kind: ChurnKind::Fail,
        })
        .collect();
    sys.install_churn(&events);
    let out = run(&mut sys, 4, 3);
    assert!(out.stats.failures >= 1, "{:?}", out.stats);
    assert!(
        out.stats.timeouts > out.stats.retransmits,
        "exhausted unit counts every attempt"
    );
    assert_eq!(out.rows.len(), 3, "only the downed schema's row is missing");
    assert_eq!(sys.pending_events(), 0);
}

#[test]
fn asymmetric_link_faults_only_hit_the_configured_direction() {
    // A near-certainly-lossy directed link towards a peer index that
    // is never a destination of this walk: the per-link override must
    // not leak onto other links, so the run matches the fault-free one
    // exactly — no retransmits, same rows. (Link rates key on the
    // (issuer, destination) pair; the base rate here is zero.)
    let mut clean = chain_system(FaultConfig::none(), 11);
    let baseline = run(&mut clean, 1, 3);
    assert_eq!(baseline.stats.retransmits, 0);

    let mut faulty_cfg = FaultConfig::none();
    faulty_cfg.links = vec![LinkFault::lossy(5, 99, 0.99)];
    let mut unaffected = chain_system(faulty_cfg, 11);
    let out = run(&mut unaffected, 1, 3);
    assert_eq!(out.rows, baseline.rows);
    assert_eq!(
        out.stats.retransmits, 0,
        "a link the walk never crosses costs nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reply duplication at rate 1.0: every unit's reply arrives twice,
    /// the session drops the copies by request id — rows, messages and
    /// the logical counters are identical to the fault-free run and
    /// every duplicate is recorded.
    #[test]
    fn duplicate_replies_never_change_rows_or_charges(
        seed in 0u64..500,
        window in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut clean = chain_system(FaultConfig::none(), seed);
        let base = run(&mut clean, window, 3);
        let mut dup = chain_system(FaultConfig::duplicating(1.0), seed);
        let out = run(&mut dup, window, 3);
        prop_assert_eq!(&out.rows, &base.rows);
        prop_assert_eq!(out.stats.messages, base.stats.messages);
        prop_assert_eq!(out.stats.subqueries, base.stats.subqueries);
        prop_assert_eq!(out.stats.requests, base.stats.requests);
        prop_assert!(out.stats.duplicates_dropped > 0, "stats: {:?}", out.stats);
        prop_assert_eq!(dup.pending_events(), 0);
    }

    /// Send accounting: every send is the first attempt of a request or
    /// a retransmission of one, under any mix of loss and duplication.
    #[test]
    fn sends_are_requests_plus_retransmits(
        seed in 0u64..500,
        loss in 0.0f64..0.3,
        dup in 0.0f64..0.5,
        window in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut cfg = FaultConfig::lossy(loss);
        cfg.duplication = dup;
        let mut sys = chain_system(cfg, seed);
        let out = run(&mut sys, window, 10);
        prop_assert_eq!(
            out.stats.sends,
            out.stats.requests + out.stats.retransmits,
            "stats: {:?}", out.stats
        );
        prop_assert_eq!(sys.pending_events(), 0);
    }

    /// Dropping a session mid-flight under faults cancels every queued
    /// reply — duplicates included — leaving the system clean.
    #[test]
    fn dropped_faulty_session_leaves_no_pending_events(
        seed in 0u64..500,
        pulls in 0usize..4,
    ) {
        let mut cfg = FaultConfig::duplicating(1.0);
        cfg.loss = 0.2;
        cfg.reorder = 0.5;
        cfg.reorder_jitter = SimDuration::from_millis(20);
        let mut sys = chain_system(cfg, seed);
        let plan = QueryPlan::search(chain_query());
        let options = QueryOptions::new()
            .strategy(Strategy::Iterative)
            .window(4)
            .max_retries(10);
        {
            let mut session = sys.open(PeerId(5), &plan, &options).unwrap();
            for _ in 0..pulls {
                if session.next_event().unwrap().is_none() {
                    break;
                }
            }
        }
        prop_assert_eq!(sys.pending_events(), 0);
    }

    /// A lossless fault model is bit-identical to the fault-free
    /// scheduler for windows 1 and 4: same rows, same stats, and no
    /// fault randomness is consumed.
    #[test]
    fn lossless_fault_model_is_bit_identical(seed in 0u64..500) {
        for window in [1usize, 4] {
            let mut plain = chain_system(FaultConfig::none(), seed);
            let base = run(&mut plain, window, 3);
            let mut zeroed = chain_system(
                FaultConfig {
                    loss: 0.0,
                    duplication: 0.0,
                    reorder: 0.0,
                    reorder_jitter: SimDuration::ZERO,
                    links: vec![LinkFault::lossy(1, 2, 0.0)],
                },
                seed,
            );
            let out = run(&mut zeroed, window, 3);
            prop_assert_eq!(&out.rows, &base.rows);
            prop_assert_eq!(out.stats, base.stats);
        }
    }

    /// The acceptance bar: under loss ≤ 0.2 with a generous retry
    /// budget, the delivered rows — and the overlay messages charged —
    /// are identical to the fault-free run; only the protocol's own
    /// counters (timeouts, retransmits, sends) grow.
    #[test]
    fn bounded_loss_with_retries_preserves_rows_and_charges(
        seed in 0u64..500,
        loss in 0.0f64..=0.2,
        window in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut clean = chain_system(FaultConfig::none(), seed);
        let base = run(&mut clean, window, 10);
        let mut lossy = chain_system(FaultConfig::lossy(loss), seed);
        let out = run(&mut lossy, window, 10);
        prop_assert_eq!(&out.rows, &base.rows, "stats: {:?}", out.stats);
        prop_assert_eq!(out.stats.messages, base.stats.messages);
        prop_assert_eq!(out.stats.failures, base.stats.failures);
        prop_assert!(out.stats.timeouts >= base.stats.timeouts);
    }

    /// Under faults the window still only decides reply timing: the
    /// logical outcome — rows, messages, protocol counters — is the
    /// same for windows 1 and 4.
    #[test]
    fn window_invariance_holds_under_faults(
        seed in 0u64..500,
        loss in 0.0f64..0.25,
        dup in 0.0f64..0.5,
    ) {
        let mut cfg = FaultConfig::lossy(loss);
        cfg.duplication = dup;
        let mut narrow = chain_system(cfg.clone(), seed);
        let w1 = run(&mut narrow, 1, 10);
        let mut wide = chain_system(cfg, seed);
        let w4 = run(&mut wide, 4, 10);
        prop_assert_eq!(&w1.rows, &w4.rows);
        prop_assert_eq!(w1.stats.messages, w4.stats.messages);
        prop_assert_eq!(w1.stats.requests, w4.stats.requests);
        prop_assert_eq!(w1.stats.sends, w4.stats.sends);
        prop_assert_eq!(w1.stats.timeouts, w4.stats.timeouts);
        prop_assert_eq!(w1.stats.retransmits, w4.stats.retransmits);
    }
}
