//! Failure-injection integration tests: crashed peers, message loss and
//! poisoned mappings must degrade the system gracefully, never corrupt
//! it.
//!
//! Queries run through the plan surface (`QueryPlan::search` +
//! `execute`).

use gridvine_core::{
    GridVineConfig, GridVineSystem, MediationItem, QueryOptions, QueryOutcome, QueryPlan,
    SelfOrgConfig, Strategy,
};
use gridvine_netsim::prelude::*;
use gridvine_pgrid::proto::{PGridMsg, PGridNode, Status};
use gridvine_pgrid::{KeyHasher, OrderPreservingHash, PeerId, Topology};
use gridvine_rdf::{Term, Triple, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
use gridvine_workload::{Workload, WorkloadConfig};

type Net = Network<PGridNode<MediationItem>, PGridMsg<MediationItem>>;

fn search(sys: &mut GridVineSystem, origin: PeerId, q: &TriplePatternQuery) -> QueryOutcome {
    sys.execute(
        origin,
        &QueryPlan::search(q.clone()),
        &QueryOptions::new().strategy(Strategy::Iterative),
    )
    .unwrap()
}

fn wired(n: usize, loss: f64, seed: u64) -> (Net, Topology) {
    let mut rng = gridvine_netsim::rng::seeded(seed);
    let topo = Topology::balanced(n, 3, &mut rng);
    let cfg = NetworkConfig {
        loss_probability: loss,
        ..NetworkConfig::lan()
    };
    let mut net: Net = Network::new(cfg, seed);
    for i in 0..n {
        net.add_node(PGridNode::from_topology(
            &topo,
            i,
            SimDuration::from_secs(5),
        ));
    }
    (net, topo)
}

#[test]
fn message_loss_is_survived_by_retries() {
    let (mut net, topo) = wired(64, 0.10, 1);
    let h = OrderPreservingHash::default();
    // Preload 50 items on the responsible peers.
    let mut keys = Vec::new();
    for i in 0..50 {
        let key = h.hash(&format!("item-{i}"), 24);
        let t = Triple::new(format!("seq:I{i}").as_str(), "DB#V", Term::literal("x"));
        for p in topo.responsible(&key).to_vec() {
            net.node_mut(NodeId::from_index(p.index()))
                .store_mut()
                .insert(key.clone(), MediationItem::Triple(t.clone()));
        }
        keys.push(key);
    }
    for (i, key) in keys.iter().enumerate() {
        let origin = NodeId::from_index(i % 64);
        let k = key.clone();
        net.invoke(origin, move |node, ctx| node.start_retrieve(ctx, k));
    }
    net.run_until_quiescent();
    let mut ok = 0;
    let mut total = 0;
    for i in 0..64 {
        for o in net.node_mut(NodeId::from_index(i)).drain_completed() {
            total += 1;
            if o.status == Status::Ok {
                ok += 1;
            }
        }
    }
    assert_eq!(total, 50, "every request must complete one way or another");
    // 10% per-message loss across ~8 messages kills ~half the first
    // attempts; with 2 retries nearly everything gets through.
    assert!(ok >= 45, "only {ok}/50 answered under 10% loss");
}

#[test]
fn poisoned_mapping_cannot_break_unrelated_queries() {
    // A totally wrong mapping may add garbage reformulations but must
    // never remove correct results.
    let mut sys = GridVineSystem::new(GridVineConfig::default());
    let p = PeerId(0);
    sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))
        .unwrap();
    sys.insert_schema(p, Schema::new("JUNK", ["Garbage"]))
        .unwrap();
    sys.insert_triple(
        p,
        Triple::new(
            "seq:A1",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        ),
    )
    .unwrap();
    let q = TriplePatternQuery::example_aspergillus();
    let before = search(&mut sys, PeerId(1), &q);

    sys.insert_mapping(
        p,
        "EMBL",
        "JUNK",
        MappingKind::Equivalence,
        Provenance::Automatic,
        vec![Correspondence::new("Organism", "Garbage")],
    )
    .unwrap();
    let after = search(&mut sys, PeerId(1), &q);
    assert_eq!(before.rows, after.rows, "poison must not eat results");
    assert_eq!(
        after.stats.reformulations, 1,
        "the junk reformulation ran (and found nothing)"
    );
}

#[test]
fn crashed_destination_mid_flight_fails_the_hop_not_the_session() {
    // A 4-schema equivalence chain; the session keeps several
    // subqueries in flight (window 4). Crashing the peers responsible
    // for a deep reformulated predicate's key while the walk is in
    // flight must surface as ExecStats::failures on that hop — the
    // session keeps draining and terminates instead of hanging, and
    // only the crashed schema's rows are missing.
    use gridvine_core::{QueryPlan, ResultEvent};
    let build = || {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            // Uniform hashing scatters the four predicate keys over
            // distinct peers (order-preserving hashing would co-locate
            // the common "S…#a…" prefix, so one crash would take out
            // every lookup).
            hash: gridvine_pgrid::HashKind::Uniform,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        for i in 0..4 {
            sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
                .unwrap();
        }
        for i in 0..3 {
            sys.insert_mapping(
                p0,
                format!("S{i}").as_str(),
                format!("S{}", i + 1).as_str(),
                MappingKind::Equivalence,
                Provenance::Manual,
                vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
            )
            .unwrap();
        }
        for i in 0..4 {
            sys.insert_triple(
                p0,
                Triple::new(
                    format!("seq:R{i}").as_str(),
                    format!("S{i}#a{i}").as_str(),
                    Term::literal("Aspergillus niger"),
                ),
            )
            .unwrap();
        }
        sys
    };
    let q = gridvine_rdf::TriplePatternQuery::new(
        "x",
        gridvine_rdf::TriplePattern::new(
            gridvine_rdf::PatternTerm::var("x"),
            gridvine_rdf::PatternTerm::constant(Term::uri("S0#a0")),
            gridvine_rdf::PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap();
    let plan = QueryPlan::search(q);
    let options = gridvine_core::QueryOptions::new().window(4);

    // Baseline: all peers up, every schema answers.
    let mut healthy = build();
    let full = healthy.execute(PeerId(5), &plan, &options).unwrap();
    assert_eq!(full.rows.len(), 4);
    assert_eq!(full.stats.failures, 0);

    // Crash run: open the session, pull one event (subqueries now in
    // flight), then crash every peer responsible for the deep S3
    // lookup's routing key while the walk is still going.
    let mut sys = build();
    let s3_key = sys.key_of("S3#a3");
    let victims: Vec<PeerId> = sys.topology().responsible(&s3_key).to_vec();
    assert!(!victims.is_empty());
    let outcome = {
        let mut session = sys.open(PeerId(5), &plan, &options).unwrap();
        let first = session.next_event().unwrap();
        assert!(first.is_some(), "the walk started");
        assert!(session.in_flight() > 0, "subqueries are in flight");
        drop(session);
        for &v in &victims {
            sys.crash_peer(v);
        }
        let mut session = sys.open(PeerId(5), &plan, &options).unwrap();
        let mut events = 0usize;
        while let Some(ev) = session.next_event().unwrap() {
            events += 1;
            assert!(events < 10_000, "the session must terminate, not hang");
            if let ResultEvent::Stats(_) = ev {}
        }
        assert!(session.is_complete());
        session.into_outcome()
    };
    assert!(
        outcome.stats.failures >= 1,
        "the crashed destination is recorded as a failure: {:?}",
        outcome.stats
    );
    assert_eq!(
        outcome.rows.len(),
        3,
        "only the crashed schema's row is missing"
    );
    assert_eq!(sys.pending_events(), 0);

    // Recovery restores the full answer.
    for &v in &victims {
        sys.recover_peer(v);
    }
    let healed = sys.execute(PeerId(5), &plan, &options).unwrap();
    assert_eq!(healed.rows.len(), 4);
}

#[test]
fn failure_truncated_closure_is_never_cached_as_complete() {
    // Crash the peer serving an intermediate schema's mapping list: the
    // walk loses that subtree (failure recorded), and the truncated
    // closure must NOT be committed to the origin's cache — after the
    // peer recovers, the same query must see the full closure again
    // instead of replaying the amputated one.
    use gridvine_core::QueryPlan;
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        hash: gridvine_pgrid::HashKind::Uniform,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for i in 0..3 {
        sys.insert_schema(p0, Schema::new(format!("T{i}").as_str(), [format!("a{i}")]))
            .unwrap();
    }
    for i in 0..2 {
        sys.insert_mapping(
            p0,
            format!("T{i}").as_str(),
            format!("T{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    for i in 0..3 {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:T{i}").as_str(),
                format!("T{i}#a{i}").as_str(),
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
    }
    let q = gridvine_rdf::TriplePatternQuery::new(
        "x",
        gridvine_rdf::TriplePattern::new(
            gridvine_rdf::PatternTerm::var("x"),
            gridvine_rdf::PatternTerm::constant(Term::uri("T0#a0")),
            gridvine_rdf::PatternTerm::constant(Term::literal("%Aspergillus%")),
        ),
    )
    .unwrap();
    let plan = QueryPlan::search(q);
    let options = gridvine_core::QueryOptions::default();

    // Crash the peers serving T1's mapping list: expanding the T1 hop
    // fails, so T2 is never discovered.
    let t1_schema_key = sys.key_of("T1");
    let victims: Vec<PeerId> = sys.topology().responsible(&t1_schema_key).to_vec();
    for &v in &victims {
        sys.crash_peer(v);
    }
    let truncated = sys.execute(PeerId(5), &plan, &options).unwrap();
    assert!(truncated.stats.failures >= 1, "{:?}", truncated.stats);
    assert_eq!(truncated.rows.len(), 2, "T2 is unreachable while down");
    assert_eq!(
        sys.cached_closures(),
        0,
        "a failure-truncated closure must never be committed"
    );

    // Recovery: the same query re-walks the full closure (no stale
    // replay) and only now memoizes it.
    for &v in &victims {
        sys.recover_peer(v);
    }
    let healed = sys.execute(PeerId(5), &plan, &options).unwrap();
    assert_eq!(healed.rows.len(), 3, "full closure after recovery");
    assert_eq!(healed.stats.failures, 0);
    assert_eq!(sys.cached_closures(), 1);
    // And the memoized closure is the complete one.
    let warm = sys.execute(PeerId(5), &plan, &options).unwrap();
    assert_eq!(warm.rows, healed.rows);
    assert_eq!(warm.stats.cache_hits, 1);
    assert_eq!(warm.stats.mapping_fetches, 0);
}

#[test]
fn self_organization_with_noisy_matcher_still_terminates() {
    let w = Workload::generate(WorkloadConfig::small(9));
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &w.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &w.schemas {
        sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
    }
    let a = w.schemas[0].id().clone();
    let b = w.schemas[1].id().clone();
    sys.insert_mapping(
        p0,
        a,
        b,
        MappingKind::Equivalence,
        Provenance::Manual,
        w.ground_truth
            .correct_pairs(w.schemas[0].id(), w.schemas[1].id()),
    )
    .unwrap();

    let cfg = SelfOrgConfig {
        error_rate: 0.5, // every other created correspondence corrupted
        max_new_mappings: 4,
        ..SelfOrgConfig::default()
    };
    for _ in 0..6 {
        let rep = sys.self_organization_round(&cfg).unwrap();
        // The system never deprecates manual mappings, whatever happens.
        assert!(sys
            .registry()
            .mappings()
            .filter(|m| m.provenance == Provenance::Manual)
            .all(|m| m.is_active()));
        let _ = rep;
    }
    // Queries still run after all that.
    let q = TriplePatternQuery::example_aspergillus();
    let out = search(&mut sys, PeerId(3), &q);
    assert!(out.stats.schemas_visited >= 1);
}

#[test]
fn crashed_majority_still_serves_surviving_keys() {
    let (mut net, topo) = wired(32, 0.0, 3);
    let h = OrderPreservingHash::default();
    let key = h.hash("survivor", 24);
    let t = Triple::new("seq:S", "DB#V", Term::literal("survivor"));
    for p in topo.responsible(&key).to_vec() {
        net.node_mut(NodeId::from_index(p.index()))
            .store_mut()
            .insert(key.clone(), MediationItem::Triple(t.clone()));
    }
    // Crash half the network, but keep the responsible group and one
    // origin alive.
    let keep: Vec<usize> = topo.responsible(&key).iter().map(|p| p.index()).collect();
    let origin = (0..32).find(|i| !keep.contains(i)).unwrap();
    let mut crashed = 0;
    for i in 0..32 {
        if i != origin && !keep.contains(&i) && crashed < 16 {
            net.crash(NodeId::from_index(i));
            crashed += 1;
        }
    }
    // Retries route around the dead half often enough to succeed
    // within a few attempts.
    let mut ok = false;
    for _ in 0..10 {
        let k = key.clone();
        let o = NodeId::from_index(origin);
        net.invoke(o, move |node, ctx| node.start_retrieve(ctx, k));
        net.run_until_quiescent();
        if net
            .node_mut(NodeId::from_index(origin))
            .drain_completed()
            .iter()
            .any(|r| r.status == Status::Ok)
        {
            ok = true;
            break;
        }
    }
    assert!(ok, "the surviving replica group must remain reachable");
}

#[test]
fn reformulated_dissemination_survives_message_loss() {
    // 5 % message loss on the WAN: the retry machinery must still let
    // reformulated queries reach other schemas, with only a small
    // residue of timed-out chains.
    use gridvine_core::{Deployment, DeploymentConfig};
    use gridvine_rdf::TriplePatternQuery;
    use gridvine_semantic::{MappingKind as MK, MappingRegistry, Provenance as Pv};
    use gridvine_workload::{QueryConfig, QueryGenerator};

    let w = Workload::generate(WorkloadConfig::small(31));
    let mut d = Deployment::new(DeploymentConfig {
        peers: 48,
        network: gridvine_netsim::NetworkConfig::lossy_planetlab(0.05),
        ..DeploymentConfig::paper(31)
    });
    let triples: Vec<Triple> = w.all_triples().into_iter().map(|(_, t)| t).collect();
    d.preload(triples);
    let mut registry = MappingRegistry::new();
    for s in &w.schemas {
        registry.add_schema(s.clone());
    }
    for i in 0..w.schemas.len() - 1 {
        let a = w.schemas[i].id().clone();
        let b = w.schemas[i + 1].id().clone();
        let corrs = w.ground_truth.correct_pairs(&a, &b);
        if !corrs.is_empty() {
            registry.add_mapping(a, b, MK::Equivalence, Pv::Manual, corrs);
        }
    }
    let mappings: Vec<_> = registry.mappings().cloned().collect();
    d.preload_mediation(w.schemas.clone(), mappings.iter());
    for i in 0..48 {
        d.network_mut()
            .node_mut(gridvine_netsim::NodeId::from_index(i))
            .set_retries(3);
    }

    let gen = QueryGenerator::new(&w, QueryConfig::default());
    let mut r = gridvine_netsim::rng::seeded(8);
    let queries: Vec<TriplePatternQuery> =
        gen.batch(30, &mut r).into_iter().map(|g| g.query).collect();
    let rep = d.run_reformulated_queries(&queries, 6);
    assert!(
        rep.answered > 15,
        "answered {} of 30 under loss",
        rep.answered
    );
    assert!(
        rep.mean_schemas > 1.5,
        "dissemination still spreads: {rep:?}"
    );
    // Retries convert most losses into successes; a residue may still
    // time out, but it must stay a small fraction of all requests.
    let requests = rep.mapping_fetches + rep.data_lookups;
    assert!(
        (rep.timed_out as f64) < 0.15 * requests as f64,
        "{} of {} requests timed out",
        rep.timed_out,
        requests
    );
}
