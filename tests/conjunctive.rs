//! Integration tests for distributed conjunctive queries (§2.3):
//! the overlay-resolved join must agree with a centralized oracle, and
//! both join modes and both dissemination strategies must agree with
//! each other — including across schema mappings.
//!
//! All joins run through the plan surface (`QueryPlan::conjunctive` +
//! `execute`).

use gridvine_core::{
    GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryOutcome, QueryPlan, Strategy,
};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{
    parse_query, Binding, ConjunctiveQuery, PatternTerm, Term, Triple, TriplePattern, TripleStore,
};
use gridvine_semantic::{MappingKind, Provenance, Schema};
use gridvine_workload::{Workload, WorkloadConfig};
use proptest::prelude::*;
// `gridvine_core::Strategy` shadows the proptest trait of the same name
// from the prelude glob; bring the trait's methods back into scope.
use proptest::strategy::Strategy as _;

const ALL_MODES: [JoinMode; 2] = [JoinMode::Independent, JoinMode::BoundSubstitution];
const ALL_STRATEGIES: [Strategy; 2] = [Strategy::Iterative, Strategy::Recursive];

/// A conjunctive `SearchFor` through the plan surface.
fn search_conjunctive(
    sys: &mut GridVineSystem,
    origin: PeerId,
    q: &ConjunctiveQuery,
    strategy: Strategy,
    mode: JoinMode,
) -> QueryOutcome {
    sys.execute(
        origin,
        &QueryPlan::conjunctive(q.clone()),
        &QueryOptions::new().strategy(strategy).join_mode(mode),
    )
    .expect("resolvable conjunctive query")
}

/// Single-schema system + a mirror store: the distributed evaluation has
/// a trivially checkable centralized oracle.
fn single_schema_system(triples: &[Triple]) -> (GridVineSystem, TripleStore) {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        seed: 0xC0,
        ..GridVineConfig::default()
    });
    sys.insert_schema(PeerId(0), Schema::new("S", ["a0", "a1", "a2", "a3"]))
        .unwrap();
    let mut oracle = TripleStore::new();
    for t in triples {
        sys.insert_triple(PeerId(0), t.clone()).unwrap();
        oracle.insert(t.clone());
    }
    (sys, oracle)
}

fn rows(out: &QueryOutcome) -> Vec<String> {
    out.rows.iter().map(|b| b.to_string()).collect()
}

fn oracle_rows(q: &ConjunctiveQuery, store: &TripleStore) -> Vec<String> {
    let mut v: Vec<String> = q.evaluate(store).iter().map(Binding::to_string).collect();
    v.sort();
    v
}

#[test]
fn parsed_rdql_conjunction_matches_oracle() {
    let triples = vec![
        Triple::new("e:1", "S#a0", Term::literal("Aspergillus niger")),
        Triple::new("e:1", "S#a1", Term::literal("1042")),
        Triple::new("e:2", "S#a0", Term::literal("Aspergillus oryzae")),
        Triple::new("e:2", "S#a1", Term::literal("2210")),
        Triple::new("e:3", "S#a0", Term::literal("Escherichia coli")),
        Triple::new("e:3", "S#a1", Term::literal("512")),
        Triple::new("e:4", "S#a0", Term::literal("Aspergillus flavus")),
        // e:4 has no a1 fact: must not survive the join.
    ];
    let (mut sys, oracle) = single_schema_system(&triples);
    let q =
        parse_query(r#"SELECT ?x, ?len WHERE (?x, <S#a0>, "%Aspergillus%"), (?x, <S#a1>, ?len)"#)
            .unwrap();
    let expected = oracle_rows(&q, &oracle);
    assert_eq!(expected.len(), 2);
    for strategy in ALL_STRATEGIES {
        for mode in ALL_MODES {
            let out = search_conjunctive(&mut sys, PeerId(9), &q, strategy, mode);
            assert_eq!(rows(&out), expected, "{strategy:?}/{mode:?}");
        }
    }
}

#[test]
fn three_pattern_chain_join() {
    // x --a0--> organism, x --a1--> len, len appears as a2-subject link:
    // exercise a join variable that is an *object* in one pattern and a
    // *subject* in another.
    let triples = vec![
        Triple::new("e:1", "S#a0", Term::literal("Aspergillus niger")),
        Triple::new("e:1", "S#a1", Term::uri("lab:alpha")),
        Triple::new("lab:alpha", "S#a2", Term::literal("Lausanne")),
        Triple::new("e:2", "S#a0", Term::literal("Aspergillus oryzae")),
        Triple::new("e:2", "S#a1", Term::uri("lab:beta")),
        // lab:beta has no a2 fact.
        Triple::new("e:3", "S#a0", Term::literal("Penicillium notatum")),
        Triple::new("e:3", "S#a1", Term::uri("lab:alpha")),
    ];
    let (mut sys, oracle) = single_schema_system(&triples);
    let q = ConjunctiveQuery::new(
        vec!["x".into(), "city".into()],
        vec![
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S#a0")),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S#a1")),
                PatternTerm::var("lab"),
            ),
            TriplePattern::new(
                PatternTerm::var("lab"),
                PatternTerm::constant(Term::uri("S#a2")),
                PatternTerm::var("city"),
            ),
        ],
    )
    .unwrap();
    let expected = oracle_rows(&q, &oracle);
    assert_eq!(expected.len(), 1, "only e:1 survives all three patterns");
    for strategy in ALL_STRATEGIES {
        for mode in ALL_MODES {
            let out = search_conjunctive(&mut sys, PeerId(2), &q, strategy, mode);
            assert_eq!(rows(&out), expected, "{strategy:?}/{mode:?}");
        }
    }
}

#[test]
fn conjunctive_query_crosses_mappings_on_every_pattern() {
    // Two-schema federation: organism + length facts exist only in the
    // EMP vocabulary for one entity. A conjunctive EMBL query must pick
    // it up through the mapping on *both* patterns.
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        seed: 7,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("EMBL", ["Organism", "SequenceLength"]))
        .unwrap();
    sys.insert_schema(p0, Schema::new("EMP", ["SystematicName", "Length"]))
        .unwrap();
    sys.insert_mapping(
        p0,
        "EMBL",
        "EMP",
        MappingKind::Equivalence,
        Provenance::Manual,
        vec![
            gridvine_semantic::Correspondence::new("Organism", "SystematicName"),
            gridvine_semantic::Correspondence::new("SequenceLength", "Length"),
        ],
    )
    .unwrap();
    for (s, p, o) in [
        ("seq:A1", "EMBL#Organism", "Aspergillus niger"),
        ("seq:A1", "EMBL#SequenceLength", "100"),
        ("seq:B1", "EMP#SystematicName", "Aspergillus oryzae"),
        ("seq:B1", "EMP#Length", "200"),
    ] {
        sys.insert_triple(p0, Triple::new(s, p, Term::literal(o)))
            .unwrap();
    }
    let q = parse_query(
        r#"SELECT ?x, ?len WHERE (?x, <EMBL#Organism>, "%Aspergillus%"), (?x, <EMBL#SequenceLength>, ?len)"#,
    )
    .unwrap();
    for strategy in ALL_STRATEGIES {
        for mode in ALL_MODES {
            let out = search_conjunctive(&mut sys, PeerId(5), &q, strategy, mode);
            let r = rows(&out);
            assert_eq!(r.len(), 2, "{strategy:?}/{mode:?}: {r:?}");
            assert!(
                r.iter().any(|s| s.contains("seq:B1") && s.contains("200")),
                "{strategy:?}/{mode:?} must find the EMP-side join: {r:?}"
            );
            assert!(out.stats.reformulations >= 1, "{strategy:?}/{mode:?}");
        }
    }
}

#[test]
fn workload_conjunctive_queries_agree_across_modes() {
    // On the generated corpus (several schemas, manual chain), pair two
    // attributes of the same schema into a conjunctive query and check
    // mode/strategy agreement.
    let w = Workload::generate(WorkloadConfig {
        schemas: 6,
        entities: 80,
        export_fraction: 0.5,
        ..WorkloadConfig::small(11)
    });
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 48,
        seed: 11,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &w.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &w.schemas {
        sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
    }
    for i in 0..w.schemas.len() - 1 {
        let a = w.schemas[i].id().clone();
        let b = w.schemas[i + 1].id().clone();
        let corrs = w.ground_truth.correct_pairs(&a, &b);
        if !corrs.is_empty() {
            sys.insert_mapping(
                p0,
                a,
                b,
                MappingKind::Equivalence,
                Provenance::Manual,
                corrs,
            )
            .unwrap();
        }
    }
    // Query: entities with attribute-0 value anything, plus attribute-1
    // value anything — both facts must exist for the same subject.
    let schema = &w.schemas[0];
    let attrs: Vec<&str> = schema
        .attributes()
        .iter()
        .take(2)
        .map(String::as_str)
        .collect();
    assert!(attrs.len() == 2, "schema has at least two attributes");
    let q = ConjunctiveQuery::new(
        vec!["x".into()],
        vec![
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(format!("{}#{}", schema.id(), attrs[0]))),
                PatternTerm::var("v0"),
            ),
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(format!("{}#{}", schema.id(), attrs[1]))),
                PatternTerm::var("v1"),
            ),
        ],
    )
    .unwrap();
    let baseline = search_conjunctive(
        &mut sys,
        PeerId(1),
        &q,
        Strategy::Iterative,
        JoinMode::Independent,
    );
    assert!(!baseline.rows.is_empty(), "corpus yields join results");
    for strategy in ALL_STRATEGIES {
        for mode in ALL_MODES {
            let out = search_conjunctive(&mut sys, PeerId(1), &q, strategy, mode);
            assert_eq!(rows(&out), rows(&baseline), "{strategy:?}/{mode:?}");
        }
    }
}

#[test]
fn generated_conjunctive_queries_reach_ground_truth_recall() {
    // Full manual chain over the corpus: generated conjunctive queries
    // must recover a substantial fraction of their global ground truth,
    // with both join modes returning identical accessions.
    use gridvine_workload::{recall, QueryConfig, QueryGenerator};
    use std::collections::BTreeSet;

    let w = Workload::generate(WorkloadConfig {
        schemas: 6,
        entities: 80,
        export_fraction: 0.5,
        ..WorkloadConfig::small(21)
    });
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 48,
        seed: 21,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &w.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &w.schemas {
        sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
    }
    for i in 0..w.schemas.len() - 1 {
        let a = w.schemas[i].id().clone();
        let b = w.schemas[i + 1].id().clone();
        let corrs = w.ground_truth.correct_pairs(&a, &b);
        if !corrs.is_empty() {
            sys.insert_mapping(
                p0,
                a,
                b,
                MappingKind::Equivalence,
                Provenance::Manual,
                corrs,
            )
            .unwrap();
        }
    }

    let gen = QueryGenerator::new(&w, QueryConfig::default());
    let mut rng = gridvine_netsim::rng::seeded(9);
    let mut recalls = Vec::new();
    for g in gen.conjunctive_batch(10, &mut rng) {
        if g.true_answers.is_empty() {
            continue;
        }
        let accessions = |out: &QueryOutcome| -> BTreeSet<String> {
            out.rows
                .iter()
                .filter_map(|b| b.get("x"))
                .filter_map(|t| t.as_uri())
                .filter_map(|u| u.as_str().strip_prefix("seq:").map(str::to_string))
                .collect()
        };
        let ind = search_conjunctive(
            &mut sys,
            PeerId(2),
            &g.query,
            Strategy::Iterative,
            JoinMode::Independent,
        );
        let bnd = search_conjunctive(
            &mut sys,
            PeerId(2),
            &g.query,
            Strategy::Iterative,
            JoinMode::BoundSubstitution,
        );
        let found = accessions(&ind);
        assert_eq!(found, accessions(&bnd), "modes disagree on {}", g.query);
        // Everything found must be true: the constrained value pools are
        // disjoint across concepts, so precision is exact.
        for acc in &found {
            assert!(
                g.true_answers.contains(acc),
                "false positive {acc} for {}",
                g.query
            );
        }
        recalls.push(recall(&found, &g.true_answers));
    }
    assert!(recalls.len() >= 5, "most generated queries are answerable");
    let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
    assert!(
        mean > 0.5,
        "full chain should integrate most join answers, mean recall {mean}"
    );
}

// ---------------------------------------------------------------------
// Property: distributed conjunctive evaluation == centralized oracle,
// for random corpora and a random two-pattern join query.
// ---------------------------------------------------------------------

fn arb_triples() -> impl proptest::strategy::Strategy<Value = Vec<Triple>> {
    // Small pools force joins and collisions.
    let subj = prop::sample::select(vec!["e:1", "e:2", "e:3", "e:4", "e:5"]);
    let pred = prop::sample::select(vec!["S#a0", "S#a1", "S#a2", "S#a3"]);
    let obj = prop::sample::select(vec!["alpha", "beta", "gamma", "delta"]);
    prop::collection::vec((subj, pred, obj), 1..25).prop_map(|v| {
        v.into_iter()
            .map(|(s, p, o)| Triple::new(s, p, Term::literal(o)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_join_matches_centralized_oracle(
        triples in arb_triples(),
        p1 in prop::sample::select(vec!["S#a0", "S#a1"]),
        p2 in prop::sample::select(vec!["S#a2", "S#a3", "S#a0"]),
        constrain_obj in prop::sample::select(vec!["alpha", "beta"]),
    ) {
        let (mut sys, oracle) = single_schema_system(&triples);
        let q = ConjunctiveQuery::new(
            vec!["x".into(), "v".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri(p1)),
                    PatternTerm::constant(Term::literal(constrain_obj)),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri(p2)),
                    PatternTerm::var("v"),
                ),
            ],
        ).unwrap();
        let expected = oracle_rows(&q, &oracle);
        for strategy in ALL_STRATEGIES {
            for mode in ALL_MODES {
                let out = search_conjunctive(&mut sys, PeerId(3), &q, strategy, mode);
                prop_assert_eq!(rows(&out), expected.clone(), "{:?}/{:?}", strategy, mode);
            }
        }
    }
}
