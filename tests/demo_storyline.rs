//! The full §4 demonstration storyline as one asserted scenario:
//!
//! 1. insert data, schemas and a sparse set of manual mappings;
//! 2. watch ci < 0 and low recall;
//! 3. let self-organization rounds create mappings until the mediation
//!    layer is strongly connected and recall plateaus;
//! 4. remove mappings ("Removing some of the existing mappings fosters
//!    the creation of additional mappings");
//! 5. inject an erroneous mapping, watch the Bayesian analysis
//!    deprecate it and composition repair replace it;
//! 6. verify recall recovered.
//!
//! The whole storyline runs through the plan surface
//! (`QueryPlan::search` + `execute`).

use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, SelfOrgConfig, Strategy,
};
use gridvine_pgrid::PeerId;
use gridvine_semantic::{MappingId, MappingKind, Provenance};
use gridvine_workload::{recall, QueryConfig, QueryGenerator, Workload, WorkloadConfig};

fn mean_recall(sys: &mut GridVineSystem, gen: &QueryGenerator<'_>, n: usize, seed: u64) -> f64 {
    let mut rng = gridvine_netsim::rng::seeded(seed);
    let mut sum = 0.0;
    let mut count = 0usize;
    for g in gen.batch(n, &mut rng) {
        if g.true_answers.is_empty() {
            continue;
        }
        let out = sys
            .execute(
                PeerId(1),
                &QueryPlan::search(g.query.clone()),
                &QueryOptions::new().strategy(Strategy::Iterative),
            )
            .unwrap();
        sum += recall(&out.accessions(), &g.true_answers);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[test]
fn full_demo_storyline() {
    let w = Workload::generate(WorkloadConfig {
        schemas: 10,
        entities: 120,
        export_fraction: 0.45,
        ..WorkloadConfig::small(17)
    });
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 48,
        seed: 17,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &w.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &w.schemas {
        sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
    }
    // Act 1: a sparse start — two manual mappings over ten schemas.
    for i in 0..2 {
        let a = w.schemas[i].id().clone();
        let b = w.schemas[i + 1].id().clone();
        let corrs = w.ground_truth.correct_pairs(&a, &b);
        sys.insert_mapping(
            p0,
            a,
            b,
            MappingKind::Equivalence,
            Provenance::Manual,
            corrs,
        )
        .unwrap();
    }
    let gen = QueryGenerator::new(&w, QueryConfig::default());
    sys.publish_connectivity(p0).unwrap();
    let ci0 = sys.connectivity_indicator(p0).unwrap();
    // Equivalence mappings give every linked schema in-degree =
    // out-degree, so ci of a sparse equivalence-only graph hovers at
    // ~0 rather than below it (ci < 0 needs one-way degree imbalance,
    // see E3's random directed graphs); the round's strongly-connected
    // check is what drives creation here.
    assert!(
        !sys.registry().is_strongly_connected(),
        "two mappings cannot connect ten schemas (ci = {ci0})"
    );
    let recall0 = mean_recall(&mut sys, &gen, 25, 1);
    assert!(recall0 < 0.7, "sparse recall should be low, got {recall0}");

    // Act 2: self-organization until connected.
    let cfg = SelfOrgConfig {
        max_new_mappings: 6,
        repair_with_composition: true,
        ..SelfOrgConfig::default()
    };
    let mut rounds = Vec::new();
    for _ in 0..10 {
        let r = sys.self_organization_round(&cfg).unwrap();
        let connected = r.strongly_connected;
        rounds.push(r);
        if connected {
            break;
        }
    }
    let created: usize = rounds.iter().map(|r| r.created.len()).sum();
    assert!(created > 0, "rounds must create mappings");
    assert!(
        rounds.last().unwrap().largest_scc_fraction > rounds[0].largest_scc_fraction
            || rounds[0].largest_scc_fraction == 1.0,
        "connectivity must improve"
    );
    let recall1 = mean_recall(&mut sys, &gen, 25, 1);
    assert!(
        recall1 > recall0,
        "self-organization must raise recall: {recall0} → {recall1}"
    );

    // Act 3: remove (deprecate) a third of the automatic mappings — the
    // demo's "removing some of the existing mappings".
    let automatic: Vec<MappingId> = sys
        .registry()
        .active_mappings()
        .filter(|m| m.provenance == Provenance::Automatic)
        .map(|m| m.id)
        .collect();
    for id in automatic.iter().take(automatic.len().div_ceil(3)) {
        sys.deprecate_mapping(p0, *id).unwrap();
    }
    // Further rounds recreate or re-compose links.
    let mut recreated = 0usize;
    for _ in 0..6 {
        let r = sys.self_organization_round(&cfg).unwrap();
        recreated += r.created.len() + r.composed.len();
    }
    assert!(
        recreated > 0,
        "removal must foster the creation of additional mappings"
    );
    let recall2 = mean_recall(&mut sys, &gen, 25, 1);
    assert!(
        recall2 + 0.05 >= recall1,
        "recall must recover after healing: {recall1} → {recall2}"
    );

    // Act 4: inject an erroneous mapping; it must be deprecated while
    // every manual mapping survives.
    let a = w.schemas[0].id().clone();
    let c = w.schemas[2].id().clone();
    let mut corrs = w.ground_truth.correct_pairs(&a, &c);
    assert!(corrs.len() >= 2);
    let mut targets: Vec<String> = corrs.iter().map(|x| x.target_attr.clone()).collect();
    targets.rotate_left(1);
    for (corr, wrong) in corrs.iter_mut().zip(targets) {
        corr.target_attr = wrong;
    }
    // Ensure no correct direct mapping hides the bad one's effect.
    let existing: Vec<MappingId> = sys
        .registry()
        .active_mappings()
        .filter(|m| (&m.source, &m.target) == (&a, &c) || (&m.source, &m.target) == (&c, &a))
        .map(|m| m.id)
        .collect();
    for id in existing {
        sys.deprecate_mapping(p0, id).unwrap();
    }
    let bad = sys
        .insert_mapping(
            p0,
            a,
            c,
            MappingKind::Equivalence,
            Provenance::Automatic,
            corrs,
        )
        .unwrap();
    for _ in 0..6 {
        sys.self_organization_round(&cfg).unwrap();
        if !sys.registry().mapping(bad).unwrap().is_active() {
            break;
        }
    }
    assert!(
        !sys.registry().mapping(bad).unwrap().is_active(),
        "the erroneous mapping must be deprecated"
    );
    for m in sys.registry().mappings() {
        if m.provenance == Provenance::Manual {
            assert!(
                m.is_active(),
                "manual mapping {:?} wrongly deprecated",
                m.id
            );
        }
    }

    // Epilogue: the mediation layer still answers with high recall.
    let recall3 = mean_recall(&mut sys, &gen, 25, 1);
    assert!(
        recall3 + 0.05 >= recall2,
        "final recall must not regress: {recall2} → {recall3}"
    );
}
