//! Message-accounting invariants across mediation-layer operations:
//! every operation's overlay cost must stay logarithmic in the network
//! size (§2.1/§2.3), and the documented operation decompositions
//! (triple = 3 updates, mapping = per-key-space updates) must hold in
//! the counters.
//!
//! All queries run through the plan surface (`QueryPlan` + `execute`).

use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{Term, Triple, TriplePatternQuery};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

fn sys_with(peers: usize) -> GridVineSystem {
    GridVineSystem::new(GridVineConfig {
        peers,
        seed: 5,
        ..GridVineConfig::default()
    })
}

/// Mean messages per run of `op`, measured over `n` repetitions.
fn mean_messages(
    sys: &mut GridVineSystem,
    n: usize,
    mut op: impl FnMut(&mut GridVineSystem, usize),
) -> f64 {
    let before = sys.messages_sent();
    for i in 0..n {
        op(sys, i);
    }
    (sys.messages_sent() - before) as f64 / n as f64
}

#[test]
fn triple_insert_is_three_bounded_updates() {
    for peers in [16usize, 64, 256] {
        let mut sys = sys_with(peers);
        let depth = sys.topology().depth() as f64;
        let mean = mean_messages(&mut sys, 40, |s, i| {
            s.insert_triple(
                PeerId(0),
                Triple::new(
                    format!("seq:S{i}").as_str(),
                    format!("DB#attr{}", i % 5).as_str(),
                    Term::literal(format!("value {i}")),
                ),
            )
            .unwrap();
        });
        // Three overlay updates, each routing + replica fan-out: stay
        // within a small constant of 3·depth.
        assert!(
            mean <= 3.0 * (depth + 4.0) * 3.0,
            "{peers} peers: {mean} messages per insert (depth {depth})"
        );
        assert!(mean >= 3.0, "{peers} peers: an insert is ≥ 3 updates");
    }
}

#[test]
fn search_cost_grows_logarithmically() {
    // Mean search messages at 256 peers must stay within ~3× of the
    // 16-peer cost (log₂ 256 / log₂ 16 = 2, plus constant slack) — not
    // the 16× a linear-cost structure would show.
    let mut means = Vec::new();
    for peers in [16usize, 256] {
        let mut sys = sys_with(peers);
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
            .unwrap();
        for i in 0..30 {
            sys.insert_triple(
                p0,
                Triple::new(
                    format!("seq:Q{i}").as_str(),
                    "EMBL#Organism",
                    Term::literal(format!("Aspergillus strain {i}")),
                ),
            )
            .unwrap();
        }
        let q = TriplePatternQuery::example_aspergillus();
        let mean = mean_messages(&mut sys, 50, |s, i| {
            let origin = PeerId::from_index(i % s.config().peers);
            s.execute(
                origin,
                &QueryPlan::pattern(q.clone()),
                &QueryOptions::default(),
            )
            .unwrap();
        });
        means.push(mean);
    }
    assert!(
        means[1] <= 3.5 * means[0].max(1.0),
        "search cost must grow logarithmically: 16 peers → {:.1}, 256 peers → {:.1}",
        means[0],
        means[1]
    );
}

#[test]
fn bidirectional_mapping_is_stored_at_both_key_spaces() {
    let mut sys = sys_with(32);
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
        .unwrap();
    sys.insert_schema(p0, Schema::new("EMP", ["SystematicName"]))
        .unwrap();
    sys.insert_mapping(
        p0,
        "EMBL",
        "EMP",
        MappingKind::Equivalence,
        Provenance::Manual,
        vec![Correspondence::new("Organism", "SystematicName")],
    )
    .unwrap();
    // Both schema key spaces must serve the mapping (§3: "at the key
    // spaces corresponding to both schemas if the mapping is
    // bidirectional").
    for schema in ["EMBL", "EMP"] {
        let maps = sys
            .mappings_at_schema(PeerId(7), &gridvine_semantic::SchemaId::new(schema))
            .unwrap();
        assert_eq!(maps.len(), 1, "{schema} key space must hold the mapping");
    }
}

#[test]
fn subsumption_mapping_is_stored_at_source_only() {
    let mut sys = sys_with(32);
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
        .unwrap();
    sys.insert_schema(p0, Schema::new("TAXA", ["ScientificName"]))
        .unwrap();
    sys.insert_mapping(
        p0,
        "EMBL",
        "TAXA",
        MappingKind::Subsumption,
        Provenance::Manual,
        vec![Correspondence::new("Organism", "ScientificName")],
    )
    .unwrap();
    let at_source = sys
        .mappings_at_schema(PeerId(3), &gridvine_semantic::SchemaId::new("EMBL"))
        .unwrap();
    assert_eq!(at_source.len(), 1);
    let at_target = sys
        .mappings_at_schema(PeerId(3), &gridvine_semantic::SchemaId::new("TAXA"))
        .unwrap();
    assert!(
        at_target.is_empty(),
        "one-way mapping must live only at the source key space"
    );
}

#[test]
fn recursive_strategy_never_costs_more_than_iterative_on_chains() {
    // E6's claim as an invariant: on mapping chains, the recursive
    // strategy's mean message cost is at most the iterative one's
    // (it skips the per-schema fetch round trip to the origin).
    let mut sys = sys_with(64);
    let p0 = PeerId(0);
    for i in 0..6 {
        sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
            .unwrap();
    }
    for i in 0..5 {
        sys.insert_mapping(
            p0,
            format!("S{i}").as_str(),
            format!("S{}", i + 1).as_str(),
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
        )
        .unwrap();
    }
    for i in 0..6 {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:C{i}").as_str(),
                format!("S{i}#a{i}").as_str(),
                Term::literal("shared value"),
            ),
        )
        .unwrap();
    }
    let q = TriplePatternQuery::new(
        "x",
        gridvine_rdf::TriplePattern::new(
            gridvine_rdf::PatternTerm::var("x"),
            gridvine_rdf::PatternTerm::constant(Term::uri("S0#a0")),
            gridvine_rdf::PatternTerm::constant(Term::literal("shared value")),
        ),
    )
    .unwrap();
    let mut search = |origin: PeerId, strategy: Strategy| {
        let out = sys
            .execute(
                origin,
                &QueryPlan::search(q.clone()),
                &QueryOptions::new().strategy(strategy),
            )
            .unwrap();
        assert_eq!(out.rows.len(), 6, "{strategy:?} finds the whole chain");
        out.stats.messages
    };
    // Cold costs (the first query pays the closure BFS under either
    // strategy): recursive skips the per-schema fetch round trip.
    let iterative_cold = search(PeerId(0), Strategy::Iterative);
    let recursive = search(PeerId(0), Strategy::Recursive);
    assert!(
        recursive <= iterative_cold,
        "recursive {recursive} must not exceed cold iterative {iterative_cold}"
    );
    // Warm iterative replays the epoch-keyed closure cache: repeated
    // queries skip every mapping-list retrieve, so the mean warm cost
    // sits strictly below the cold cost on this 6-schema chain.
    let mut warm_sum = 0u64;
    for i in 0..20 {
        warm_sum += search(PeerId::from_index((i * 3) % 64), Strategy::Iterative);
    }
    let iterative_warm = warm_sum as f64 / 20.0;
    assert!(
        iterative_warm < iterative_cold as f64,
        "cached iterative {iterative_warm} must undercut cold {iterative_cold}"
    );
}
