//! Cross-crate integration tests: the full GridVine stack, from the
//! workload generator through the overlay to reformulated answers,
//! driven through the plan surface (`QueryPlan::search` + `execute`).

use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryOutcome, QueryPlan, SelfOrgConfig, Strategy,
};
use gridvine_pgrid::PeerId;
use gridvine_rdf::TriplePatternQuery;
use gridvine_rdf::{parse_single, Term, Triple};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
use gridvine_workload::{recall, QueryConfig, QueryGenerator, Workload, WorkloadConfig};
use std::collections::BTreeSet;

/// The reformulated `SearchFor`: a closure plan drained via `execute`.
fn search(
    sys: &mut GridVineSystem,
    origin: PeerId,
    q: &TriplePatternQuery,
    strategy: Strategy,
) -> QueryOutcome {
    sys.execute(
        origin,
        &QueryPlan::search(q.clone()),
        &QueryOptions::new().strategy(strategy),
    )
    .unwrap()
}

/// Load a workload into a system with `seed_mappings` manual links.
fn load_system(schemas: usize, seed_mappings: usize, seed: u64) -> (GridVineSystem, Workload) {
    let w = Workload::generate(WorkloadConfig {
        schemas,
        entities: 120,
        export_fraction: 0.4,
        ..WorkloadConfig::small(seed)
    });
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 48,
        seed,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &w.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &w.schemas {
        sys.insert_triples(p0, w.triples_of(s.id())).unwrap();
    }
    for i in 0..seed_mappings.min(schemas - 1) {
        let a = w.schemas[i].id().clone();
        let b = w.schemas[i + 1].id().clone();
        let corrs = w.ground_truth.correct_pairs(&a, &b);
        sys.insert_mapping(
            p0,
            a,
            b,
            MappingKind::Equivalence,
            Provenance::Manual,
            corrs,
        )
        .unwrap();
    }
    (sys, w)
}

#[test]
fn rdql_to_answers_across_the_dht() {
    let (mut sys, _) = load_system(8, 7, 1);
    let q = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#).unwrap();
    let out = search(&mut sys, PeerId(33), &q, Strategy::Iterative);
    assert!(!out.rows.is_empty());
    // Results from more than one schema when a chain exists: the
    // reformulations must have reached beyond EMBL.
    assert!(out.stats.schemas_visited > 1);
}

#[test]
fn iterative_and_recursive_agree_on_results() {
    let (mut sys, w) = load_system(8, 7, 2);
    let generator = QueryGenerator::new(&w, QueryConfig::default());
    let mut rng = gridvine_netsim::rng::seeded(5);
    for g in generator.batch(15, &mut rng) {
        let a = search(&mut sys, PeerId(1), &g.query, Strategy::Iterative);
        let b = search(&mut sys, PeerId(1), &g.query, Strategy::Recursive);
        let ra: BTreeSet<Term> = a.terms(&g.query.distinguished).into_iter().collect();
        let rb: BTreeSet<Term> = b.terms(&g.query.distinguished).into_iter().collect();
        assert_eq!(ra, rb, "strategies disagree on {}", g.query);
    }
}

#[test]
fn full_chain_reaches_everything_reachable() {
    // With a full manual chain over all schemas, a query about a
    // concept every schema carries (organism, concept 0) must reach all
    // entities whose value matches and are exported by some schema with
    // an organism attribute.
    let (mut sys, w) = load_system(6, 5, 3);
    let q = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#).unwrap();
    let out = search(&mut sys, PeerId(0), &q, Strategy::Iterative);

    // Compute the reachable ground truth by hand.
    let mut expected: BTreeSet<String> = BTreeSet::new();
    for s in &w.schemas {
        let Some(organism_attr) = s
            .attributes()
            .iter()
            .find(|a| {
                w.ground_truth
                    .concept(s.id(), a)
                    .map(|c| c.0 == 0)
                    .unwrap_or(false)
            })
            .cloned()
        else {
            continue;
        };
        // Only canonical-format schemas can match the pattern text.
        let _ = organism_attr;
        for &i in &w.exports[s.id()] {
            let e = &w.entities[i];
            let rendered = w.rendered_value(s.id(), 0, e);
            if rendered.contains("Aspergillus") {
                expected.insert(e.accession.clone());
            }
        }
    }
    assert_eq!(out.accessions(), expected);
}

#[test]
fn self_organization_converges_to_connected_and_stops() {
    let (mut sys, _) = load_system(8, 1, 4);
    let cfg = SelfOrgConfig {
        max_new_mappings: 8,
        ..SelfOrgConfig::default()
    };
    let mut quiesced = false;
    for _ in 0..12 {
        let rep = sys.self_organization_round(&cfg).unwrap();
        if rep.strongly_connected && rep.created.is_empty() && rep.deprecated.is_empty() {
            quiesced = true;
            break;
        }
    }
    assert!(
        quiesced,
        "self-organization should reach a connected fixpoint"
    );
    assert!(sys.registry().is_strongly_connected());
}

#[test]
fn recall_improves_monotonically_with_mapping_knowledge() {
    let (mut sparse, w) = load_system(8, 1, 5);
    let (mut dense, _) = load_system(8, 7, 5);
    let generator = QueryGenerator::new(&w, QueryConfig::default());
    let mut rng = gridvine_netsim::rng::seeded(6);
    let mut sparse_recall = 0.0;
    let mut dense_recall = 0.0;
    let mut n = 0;
    for g in generator.batch(20, &mut rng) {
        if g.true_answers.is_empty() {
            continue;
        }
        let a = search(&mut sparse, PeerId(2), &g.query, Strategy::Iterative);
        let b = search(&mut dense, PeerId(2), &g.query, Strategy::Iterative);
        sparse_recall += recall(&a.accessions(), &g.true_answers);
        dense_recall += recall(&b.accessions(), &g.true_answers);
        n += 1;
    }
    assert!(n > 0);
    assert!(
        dense_recall >= sparse_recall,
        "denser mapping network must not lose recall ({sparse_recall} vs {dense_recall})"
    );
    assert!(
        dense_recall > sparse_recall,
        "and should strictly gain on this corpus"
    );
}

#[test]
fn figure2_exact_values() {
    // The verbatim Figure-2 data through the whole stack.
    let mut sys = GridVineSystem::new(GridVineConfig::default());
    let p = PeerId(0);
    sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))
        .unwrap();
    sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))
        .unwrap();
    sys.insert_mapping(
        p,
        "EMBL",
        "EMP",
        MappingKind::Equivalence,
        Provenance::Manual,
        vec![Correspondence::new("Organism", "SystematicName")],
    )
    .unwrap();
    for (s, o) in [
        ("seq:A78712", "Aspergillus niger"),
        ("seq:A78767", "Aspergillus nidulans"),
    ] {
        sys.insert_triple(p, Triple::new(s, "EMBL#Organism", Term::literal(o)))
            .unwrap();
    }
    sys.insert_triple(
        p,
        Triple::new(
            "seq:NEN94295-05",
            "EMP#SystematicName",
            Term::literal("Aspergillus oryzae"),
        ),
    )
    .unwrap();

    let q = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#).unwrap();
    let out = search(&mut sys, PeerId(5), &q, Strategy::Recursive);
    assert_eq!(
        out.accessions(),
        BTreeSet::from([
            "A78712".to_string(),
            "A78767".to_string(),
            "NEN94295-05".to_string()
        ])
    );
}

#[test]
fn subsumption_mappings_reformulate_one_way_only() {
    // GAV inclusion (§3): EMBL#Organism ⊑ TAXA#ScientificName. A query
    // posed against the subsumed schema (EMBL) may be answered by the
    // subsuming one (TAXA); the reverse reformulation is NOT licensed —
    // TAXA names need not be EMBL organisms.
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 32,
        ..GridVineConfig::default()
    });
    let p = PeerId(0);
    sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))
        .unwrap();
    sys.insert_schema(p, Schema::new("TAXA", ["ScientificName"]))
        .unwrap();
    sys.insert_mapping(
        p,
        "EMBL",
        "TAXA",
        MappingKind::Subsumption,
        Provenance::Manual,
        vec![Correspondence::new("Organism", "ScientificName")],
    )
    .unwrap();
    sys.insert_triple(
        p,
        Triple::new(
            "seq:E1",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        ),
    )
    .unwrap();
    sys.insert_triple(
        p,
        Triple::new(
            "tax:T1",
            "TAXA#ScientificName",
            Term::literal("Aspergillus oryzae"),
        ),
    )
    .unwrap();

    for strategy in [Strategy::Iterative, Strategy::Recursive] {
        // Forward: EMBL query reaches both vocabularies.
        let q = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#).unwrap();
        let out = search(&mut sys, PeerId(3), &q, strategy);
        assert_eq!(out.rows.len(), 2, "{strategy:?}: {:?}", out.rows);
        assert_eq!(out.stats.schemas_visited, 2, "{strategy:?}");

        // Backward: TAXA query stays in TAXA.
        let q = parse_single(r#"SELECT ?x WHERE (?x, <TAXA#ScientificName>, "%Aspergillus%")"#)
            .unwrap();
        let out = search(&mut sys, PeerId(3), &q, strategy);
        assert_eq!(out.rows.len(), 1, "{strategy:?}: {:?}", out.rows);
        assert_eq!(out.stats.schemas_visited, 1, "{strategy:?}");
        assert!(out.terms("x").contains(&Term::uri("tax:T1")));
    }
}
