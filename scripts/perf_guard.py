#!/usr/bin/env python3
"""Perf guard over the checked-in BENCH_rdf.json.

Fails CI when a regenerated benchmark file records a regression:

* ``scan_full`` must be at or above parity (>= 1.0x) — the raw-speed
  pass pinned the full-scan path at least even with the seed store;
* every pinned op must stay within 0.9x of the speedup recorded when
  its pin was last refreshed (the PINNED table below is updated in the
  same commit that regenerates BENCH_rdf.json).

``parallel_ingest_8way`` is deliberately unpinned: the shared-pool
shard count degenerates to 1 on low-core hosts (see bench_rdf.rs), so
its recorded speedup measures the machine, not the code.

Usage: python3 scripts/perf_guard.py [path/to/BENCH_rdf.json]
"""

import json
import sys

# op -> speedup recorded at the last BENCH_rdf.json regeneration.
PINNED = {
    "ingest_100k": 2.09,
    "ingest_100k_row_at_a_time": 1.18,
    "select_eq_point": 1.13,
    "select_eq_scan": 16.23,
    "select_eq_cursor": 14.54,
    "select_eq_materialize": 2.58,
    "select_eq_granules": 61.97,
    "scan_full": 1.55,
    "scan_full_projected": 2.55,
    "select_like_prefix": 234.88,
    "conjunctive_join_3": 366.78,
    "merge_join_runs": 1.23,
    "exec_first_result": 10.62,
    "exec_limit_10": 27.71,
    "exec_overlap_first_result": 2.57,
    "exec_load_p99": 4.30,
    "exec_failover_p99": 1.12,
}

TOLERANCE = 0.9  # a regenerated speedup may drop to 90% of its pin


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_rdf.json"
    with open(path) as f:
        data = json.load(f)
    recorded = {r["op"]: r["speedup"] for r in data["results"]}
    failures = []

    scan_full = recorded.get("scan_full")
    if scan_full is None:
        failures.append("scan_full missing from results")
    elif scan_full < 1.0:
        failures.append(f"scan_full {scan_full:.2f}x below parity (>= 1.0x required)")

    for op, pin in sorted(PINNED.items()):
        got = recorded.get(op)
        if got is None:
            failures.append(f"{op} missing from results (pinned at {pin:.2f}x)")
        elif got < TOLERANCE * pin:
            failures.append(
                f"{op} {got:.2f}x fell below {TOLERANCE:.0%} of its "
                f"{pin:.2f}x pin ({TOLERANCE * pin:.2f}x floor)"
            )

    for op in sorted(recorded):
        if op not in PINNED and op != "parallel_ingest_8way":
            print(f"note: {op} ({recorded[op]:.2f}x) is not pinned; add it to PINNED")

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        return 1
    print(f"perf guard: {len(PINNED)} pinned ops ok, scan_full {scan_full:.2f}x >= 1.0x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
