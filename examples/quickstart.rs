//! Quickstart: a five-minute tour of the GridVine PDMS.
//!
//! Builds a 32-peer network, shares two heterogeneous schemas plus a
//! mapping between them, inserts data, and runs the paper's
//! `%Aspergillus%` query with reformulation — incrementally, through a
//! pull-based [`gridvine_core::QuerySession`], watching results arrive
//! schema hop by schema hop.
//!
//! Run with: `cargo run --example quickstart`

use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, ResultEvent, Strategy,
};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{parse_single, Term, Triple};
use gridvine_semantic::{BayesConfig, Correspondence, MappingKind, Provenance, Schema};

fn main() {
    // 1. A GridVine network of 32 peers over a balanced P-Grid overlay.
    let mut gridvine = GridVineSystem::new(GridVineConfig {
        peers: 32,
        ..GridVineConfig::default()
    });
    let publisher = PeerId(0);

    // 2. Two labs publish their own schemas — no global schema needed.
    gridvine
        .insert_schema(
            publisher,
            Schema::new("EMBL", ["Organism", "SequenceLength"]),
        )
        .expect("schema stored");
    gridvine
        .insert_schema(publisher, Schema::new("EMP", ["SystematicName"]))
        .expect("schema stored");

    // 3. A manual pairwise mapping declares the predicates equivalent.
    gridvine
        .insert_mapping(
            publisher,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
        .expect("mapping stored");

    // 4. Each lab inserts triples; every triple is indexed three times
    //    in the DHT (by subject, predicate and object).
    for (s, p, o) in [
        ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
        ("seq:A78767", "EMBL#Organism", "Aspergillus nidulans"),
        ("seq:A78712", "EMBL#SequenceLength", "1042"),
        (
            "seq:NEN94295-05",
            "EMP#SystematicName",
            "Aspergillus oryzae",
        ),
        ("seq:X00912", "EMP#SystematicName", "Escherichia coli"),
    ] {
        gridvine
            .insert_triple(publisher, Triple::new(s, p, Term::literal(o)))
            .expect("triple stored");
    }

    // 5. Any peer can query in *its* vocabulary; reformulation reaches
    //    the other schema's data automatically. Open a pull-based
    //    session and watch the dissemination happen: each pull advances
    //    the closure walk by one routed subquery and yields events —
    //    results arrive incrementally, per destination schema.
    let query = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#)
        .expect("well-formed RDQL");
    println!("query:     {query}");

    let issuer = PeerId(17);
    let plan = QueryPlan::search(query);
    let options = QueryOptions::new().strategy(Strategy::Iterative);
    let mut session = gridvine.open(issuer, &plan, &options).expect("plan opens");
    while let Some(event) = session.next_event().expect("walk advances") {
        match event {
            ResultEvent::SchemaHop {
                schema,
                depth,
                quality,
            } => println!("hop:       {schema} (depth {depth}, path quality {quality:.2})"),
            ResultEvent::Rows(batch) => {
                for row in &batch {
                    println!("result:    {}", row.get("x").expect("bound"));
                }
            }
            ResultEvent::Stats(delta) => {
                println!("           …{} overlay messages", delta.messages)
            }
        }
    }
    let outcome = session.into_outcome();

    println!(
        "schemas:   {} visited (1 reformulation step)",
        outcome.stats.schemas_visited
    );
    println!(
        "messages:  {} overlay messages total",
        outcome.stats.messages
    );
    assert_eq!(outcome.rows.len(), 3, "two EMBL + one EMP record");

    // The blocking form is a drain of the same session — identical
    // rows; and because the mapping network is unchanged, this repeat
    // replays the memoized reformulation closure: no mapping-list
    // fetches, strictly fewer messages.
    let drained = gridvine
        .execute(issuer, &plan, &options)
        .expect("search runs");
    assert_eq!(drained.rows, outcome.rows);
    assert!(drained.stats.messages < outcome.stats.messages);
    println!(
        "replay:    {} messages (closure cache, {} cached closure)",
        drained.stats.messages,
        gridvine.cached_closures(),
    );

    // 6. The session runs on a simulated clock: with window(4), up to
    //    four subqueries fly concurrently, and the warm closure replay
    //    pipelines every hop — same rows, same messages, less
    //    simulated time than the serial window(1) drain.
    let timed = |gridvine: &mut GridVineSystem, w: usize| {
        let mut session = gridvine
            .open(issuer, &plan, &options.window(w))
            .expect("plan opens");
        while session.next_event().expect("walk advances").is_some() {}
        let elapsed = session.sim_elapsed();
        (session.into_outcome(), elapsed)
    };
    let (serial, serial_t) = timed(&mut gridvine, 1);
    let (overlapped, overlapped_t) = timed(&mut gridvine, 4);
    assert_eq!(serial.rows, overlapped.rows);
    assert_eq!(serial.stats.messages, overlapped.stats.messages);
    println!(
        "scheduler: window 1 drains in {serial_t} (max {} in flight); \
         window 4 in {overlapped_t} (max {} in flight)",
        serial.stats.max_in_flight, overlapped.stats.max_in_flight,
    );

    // 7. Scheduler + cache counters ride along in every ExecStats.
    let counters = gridvine.cache_counters();
    println!(
        "counters:  closure cache {} hits / {} misses / {} evictions; \
         last run fetched {} mapping lists",
        counters.hits, counters.misses, counters.evictions, overlapped.stats.mapping_fetches,
    );
    // 8. The mediation layer defends itself. A wrong — but well-typed —
    //    mapping slips into the registry; a Bayesian assessment pass
    //    probes the mapping cycle it closes, finds the composition
    //    inconsistent, and quarantines it. The probes are charged as
    //    real overlay traffic in the same ExecStats as any query.
    let wrong = gridvine
        .insert_mapping(
            publisher,
            "EMP",
            "EMBL",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("SystematicName", "SequenceLength")],
        )
        .expect("mapping stored");
    let report = gridvine
        .assessment_pass(issuer, &BayesConfig::default())
        .expect("assessment runs");
    assert_eq!(report.quarantined, vec![wrong], "the bad copy is caught");
    println!(
        "assessed:  {} cycle probes charged as {} overlay messages; \
         {} mapping quarantined in {}",
        report.stats.assessment_probes,
        report.stats.messages,
        report.stats.quarantined_mappings,
        report.elapsed,
    );

    println!("\nthe EMP record was found although the query was written against EMBL.");
}
