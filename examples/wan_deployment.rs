//! The WAN harness, end to end: GridVine on the discrete-event
//! simulator, with streaming partial results and completion-time
//! latencies.
//!
//! Builds a 48-machine deployment over the regional WAN model, preloads
//! a generated bioinformatics workload plus a mapping chain across its
//! schemas, then drives a batch of reformulated queries through
//! [`Deployment::run_plans_with`]: every matched partial result streams
//! to the console *at its simulated completion instant* while deeper
//! reformulation chains are still in flight, and the final latency CDF
//! is computed from actual completion times. A second, identical batch
//! shows the per-origin closure caches at work: repeated origins replay
//! their recorded closures and skip mapping fetches.
//!
//! Everything is driven by one fixed seed, so the output is
//! byte-for-byte deterministic — CI runs this example twice and diffs
//! the stdout to pin the event-driven path's reproducibility.
//!
//! Run with: `cargo run --example wan_deployment`

use gridvine_core::{Deployment, DeploymentConfig, QueryPlan, WanBatchOptions};
use gridvine_netsim::{rng, NetworkConfig, SimDuration};
use gridvine_rdf::{Triple, TriplePatternQuery};
use gridvine_semantic::{Mapping, MappingKind, MappingRegistry, Provenance};
use gridvine_workload::{QueryConfig, QueryGenerator, Workload, WorkloadConfig};

const SEED: u64 = 2007;

fn main() {
    // 1. A 48-machine deployment on the homogeneous PlanetLab model.
    let workload = Workload::generate(WorkloadConfig::small(SEED));
    let config = DeploymentConfig {
        peers: 48,
        network: NetworkConfig::planetlab(),
        ..DeploymentConfig::paper(SEED)
    };
    let mut deployment = Deployment::new(config);
    let triples: Vec<Triple> = workload.all_triples().into_iter().map(|(_, t)| t).collect();
    let placements = deployment.preload(triples);
    println!("preload:   {placements} (key, triple) placements across 48 machines");

    // 2. A mapping chain across the workload schemas, preloaded into
    //    the DHT as completed Update(Schema Mapping) operations.
    let mut registry = MappingRegistry::new();
    for s in &workload.schemas {
        registry.add_schema(s.clone());
    }
    for i in 0..workload.schemas.len() - 1 {
        let a = workload.schemas[i].id().clone();
        let b = workload.schemas[i + 1].id().clone();
        let corrs = workload.ground_truth.correct_pairs(&a, &b);
        if !corrs.is_empty() {
            registry.add_mapping(a, b, MappingKind::Equivalence, Provenance::Manual, corrs);
        }
    }
    let mappings: Vec<Mapping> = registry.mappings().cloned().collect();
    deployment.preload_mediation(workload.schemas.clone(), mappings.iter());

    // 3. A reformulated-query batch on a Poisson arrival process. The
    //    sink fires at each matched reply's simulated completion
    //    instant — chains overlap in flight, so partials from
    //    different queries interleave.
    let generator = QueryGenerator::new(&workload, QueryConfig::default());
    let mut query_rng = rng::seeded(SEED ^ 0x51);
    let queries: Vec<TriplePatternQuery> = generator
        .batch(24, &mut query_rng)
        .into_iter()
        .map(|g| g.query)
        .collect();
    let plans: Vec<QueryPlan> = queries.into_iter().map(QueryPlan::search).collect();
    let options = WanBatchOptions {
        ttl: 6,
        mean_interarrival: Some(SimDuration::from_millis(200)),
        limit: None,
    };
    println!("\nstreamed partial results (first batch, cold caches):");
    let mut partials = 0usize;
    let report = deployment.run_plans_with(&plans, &options, &mut |p| {
        partials += 1;
        if partials <= 12 {
            println!(
                "  t={:<9} query {:>2}: +{} row(s)",
                p.at.to_string(),
                p.query,
                p.bindings.len()
            );
        }
    });
    println!("  … {partials} partials total");

    let mut latencies = report.latencies.clone();
    println!("\nfirst batch (cold):");
    println!(
        "  answered:  {}/{} (mean {:.1} schemas reached)",
        report.answered, report.submitted, report.mean_schemas
    );
    println!(
        "  lookups:   {} data, {} mapping fetches, {} cache hits",
        report.data_lookups, report.mapping_fetches, report.cache_hits
    );
    println!(
        "  latency:   median {:.3}s, p90 {:.3}s (from actual completion times)",
        latencies.median(),
        latencies.quantile(0.9)
    );
    println!("  messages:  {}", report.messages);

    // 4. The same batch again: origins that repeat replay their
    //    memoized closures — fewer mapping fetches, same answers.
    let warm = deployment.run_plans(&plans, &options);
    println!("\nsecond batch (warm per-origin closure caches):");
    println!("  answered:  {}/{}", warm.answered, warm.submitted);
    println!(
        "  lookups:   {} data, {} mapping fetches, {} cache hits",
        warm.data_lookups, warm.mapping_fetches, warm.cache_hits
    );
    println!(
        "  cached:    {} closures memoized across origins",
        deployment.cached_closures()
    );
    assert_eq!(warm.answered, report.answered, "replays answer identically");
    assert!(warm.mapping_fetches <= report.mapping_fetches);
}
