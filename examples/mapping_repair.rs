//! The §4 deprecation-and-repair storyline, end to end.
//!
//! "Removing some of the existing mappings fosters the creation of
//! additional mappings, some of which get deprecated by the Bayesian
//! analysis and are gradually replaced by other mapping paths."
//!
//! This example installs a trusted manual ring over six schemas plus
//! one *erroneous* automatic chord (its correspondences swap two
//! attributes). It then runs self-organization rounds with composition
//! repair enabled and watches: (1) the Bayesian cycle analysis deprecate
//! the bad chord, (2) a replacement mapping get composed from the
//! surviving manual path, and (3) a probe query's results recover.
//!
//! Run with: `cargo run --release --example mapping_repair`

use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, SelfOrgConfig, Strategy,
};
use gridvine_pgrid::PeerId;
use gridvine_semantic::{Correspondence, MappingKind, Provenance};
use gridvine_workload::{Workload, WorkloadConfig};

fn main() {
    let schemas = 6;
    let workload = Workload::generate(WorkloadConfig {
        schemas,
        entities: 150,
        export_fraction: 0.4,
        ..WorkloadConfig::small(42)
    });
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &workload.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &workload.schemas {
        sys.insert_triples(p0, workload.triples_of(s.id())).unwrap();
    }

    // The trusted manual ring: S0—S1—…—S5—S0.
    for i in 0..schemas {
        let a = workload.schemas[i].id().clone();
        let b = workload.schemas[(i + 1) % schemas].id().clone();
        let corrs = workload.ground_truth.correct_pairs(&a, &b);
        sys.insert_mapping(
            p0,
            a,
            b,
            MappingKind::Equivalence,
            Provenance::Manual,
            corrs,
        )
        .unwrap();
    }

    // One erroneous automatic chord S0→S2: the first two ground-truth
    // correspondences are swapped, so compositions around the
    // S0→S2→S1→S0 cycle survive but land on the wrong attribute.
    let a = workload.schemas[0].id().clone();
    let c = workload.schemas[2].id().clone();
    let mut corrs = workload.ground_truth.correct_pairs(&a, &c);
    assert!(corrs.len() >= 2, "need two shared concepts to swap");
    let swapped: Vec<Correspondence> = {
        let mut targets: Vec<String> = corrs.iter().map(|x| x.target_attr.clone()).collect();
        targets.rotate_left(1);
        corrs
            .drain(..)
            .zip(targets)
            .map(|(x, wrong)| Correspondence::new(x.source_attr, wrong))
            .collect()
    };
    let bad = sys
        .insert_mapping(
            p0,
            a.clone(),
            c.clone(),
            MappingKind::Equivalence,
            Provenance::Automatic,
            swapped,
        )
        .unwrap();
    println!("installed manual ring ({schemas} mappings) + 1 erroneous chord {a}→{c}\n");

    // Probe query in S0's vocabulary; with the bad chord active, the
    // reformulation into S2's vocabulary uses the swapped attribute and
    // pollutes the answer stream with wrong-concept values.
    let probe = gridvine_workload::QueryGenerator::new(&workload, Default::default()).figure2();
    let probe_plan = QueryPlan::search(probe.query.clone());
    let probe_opts = QueryOptions::new().strategy(Strategy::Iterative);
    let before = sys.execute(PeerId(7), &probe_plan, &probe_opts).unwrap();
    println!(
        "before repair: {} results via {} schemas",
        before.rows.len(),
        before.stats.schemas_visited
    );

    let cfg = SelfOrgConfig {
        max_new_mappings: 0, // isolate the deprecation/repair mechanics
        repair_with_composition: true,
        ..SelfOrgConfig::default()
    };
    for round in 1..=4 {
        let r = sys.self_organization_round(&cfg).unwrap();
        println!(
            "round {round}: ci = {:+.2}, deprecated {:?}, composed {:?}, {} active mappings",
            r.ci, r.deprecated, r.composed, r.active_mappings
        );
        if !r.composed.is_empty() {
            let m = sys.registry().mapping(r.composed[0]).unwrap();
            let all_correct = m
                .correspondences
                .iter()
                .all(|x| workload.ground_truth.is_correct(&m.source, &m.target, x));
            println!(
                "  replacement {}→{} composed from the manual path: {} correspondences, \
                 all correct = {all_correct}, quality {:.3}",
                m.source,
                m.target,
                m.correspondences.len(),
                m.quality
            );
            assert!(all_correct, "composed replacement must be correct");
        }
    }

    assert!(
        !sys.registry().mapping(bad).unwrap().is_active(),
        "the erroneous chord must be deprecated"
    );
    let composed_exists = sys
        .registry()
        .active_mappings()
        .any(|m| (&m.source, &m.target) == (&a, &c) && m.provenance == Provenance::Automatic);
    assert!(composed_exists, "a composed replacement must be active");

    let after = sys.execute(PeerId(7), &probe_plan, &probe_opts).unwrap();
    println!(
        "\nafter repair: {} results via {} schemas (bad chord gone, composed path in place)",
        after.rows.len(),
        after.stats.schemas_visited
    );
    assert!(after.stats.schemas_visited >= before.stats.schemas_visited.saturating_sub(1));
    println!("storyline reproduced: erroneous mapping deprecated, replaced by a composed path.");
}
