//! Open-loop load on the concurrent-session multiplexer: 1000 queries
//! from 16 origins, Poisson arrivals, regional-WAN latencies.
//!
//! Seeds a 64-peer GridVine system with the generated bioinformatics
//! corpus and a manual mapping chain, plugs the PlanetLab-2007 regional
//! WAN model into the session scheduler, then submits 1000 reformulated
//! queries open-loop — arrivals keep coming whether or not earlier
//! sessions finished, so queueing is visible instead of self-throttled.
//! Two regimes are run: a provisioned pool (every arrival admitted) and
//! an overloaded one (tight admission cap, bounded wait queue, per-
//! session deadline), each reporting admission accounting, per-origin
//! fairness and the completion-latency CDF under load.
//!
//! Everything is driven by fixed seeds, so the output is byte-for-byte
//! deterministic — CI runs this example twice and diffs the stdout.
//!
//! Run with: `cargo run --example open_loop`

use gridvine_core::{GridVineConfig, GridVineSystem, QueryPlan};
use gridvine_load::{run_open_loop, ArrivalProcess, LoadConfig};
use gridvine_netsim::{rng, LatencyConfig, SimDuration};
use gridvine_pgrid::PeerId;
use gridvine_semantic::{MappingKind, Provenance};
use gridvine_workload::{QueryConfig, QueryGenerator, Workload, WorkloadConfig};

const SEED: u64 = 2007;
const SESSIONS: usize = 1000;

fn seeded_system() -> (GridVineSystem, Vec<QueryPlan>) {
    let workload = Workload::generate(WorkloadConfig::small(SEED));
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 64,
        latency: LatencyConfig::planetlab_2007(),
        seed: SEED,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &workload.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    let mut loaded = 0;
    for s in &workload.schemas {
        loaded += sys.insert_triples(p0, workload.triples_of(s.id())).unwrap();
    }
    for i in 0..workload.schemas.len() - 1 {
        let a = workload.schemas[i].id().clone();
        let b = workload.schemas[i + 1].id().clone();
        let corrs = workload.ground_truth.correct_pairs(&a, &b);
        if !corrs.is_empty() {
            sys.insert_mapping(
                p0,
                a,
                b,
                MappingKind::Equivalence,
                Provenance::Manual,
                corrs,
            )
            .unwrap();
        }
    }
    println!(
        "preload: {loaded} triples, {} schemas, {} mappings, regional WAN latencies",
        workload.schemas.len(),
        sys.registry().active_count()
    );

    let generator = QueryGenerator::new(&workload, QueryConfig::default());
    let mut qrng = rng::derive(SEED, 0x0431);
    let plans: Vec<QueryPlan> = generator
        .batch(24, &mut qrng)
        .into_iter()
        .map(|g| QueryPlan::search(g.query))
        .collect();
    (sys, plans)
}

fn main() {
    // Regime 1: provisioned — the admission cap exceeds what the
    // arrival rate can keep in flight, so nothing queues or rejects
    // and the CDF reflects contention on the shared peers alone.
    let (mut sys, plans) = seeded_system();
    let provisioned = LoadConfig {
        sessions: SESSIONS,
        arrivals: ArrivalProcess::Poisson { rate: 4.0 },
        origins: 16,
        max_concurrent: 64,
        queue_capacity: 64,
        seed: SEED,
        ..LoadConfig::default()
    };
    println!("\n== provisioned: Poisson 4/s, cap 64 ==");
    let r1 = run_open_loop(&mut sys, &plans, &provisioned);
    print!("{r1}");
    assert_eq!(r1.submitted, SESSIONS);
    assert_eq!(r1.rejected, 0, "provisioned pool admits everything");

    // Regime 2: overloaded — the same traffic against a pool an order
    // of magnitude smaller, with a bounded wait queue and a hard
    // per-session deadline cancelling laggards through the pool's
    // drop-cancels-replies path.
    let (mut sys, plans) = seeded_system();
    let overloaded = LoadConfig {
        sessions: SESSIONS,
        arrivals: ArrivalProcess::Poisson { rate: 40.0 },
        origins: 16,
        max_concurrent: 6,
        queue_capacity: 8,
        deadline: Some(SimDuration::from_secs(5)),
        seed: SEED,
        ..LoadConfig::default()
    };
    println!("\n== overloaded: Poisson 40/s, cap 6, queue 8, 5s deadline ==");
    let r2 = run_open_loop(&mut sys, &plans, &overloaded);
    print!("{r2}");
    assert_eq!(r2.submitted, SESSIONS);
    assert!(
        r2.rejected + r2.cancelled_deadline > 0,
        "overload must shed load"
    );
    assert!(
        r2.completed < r1.completed,
        "a 10x smaller pool under 10x the arrival rate delivers less"
    );
    println!(
        "\nopen loop: delivered fraction {:.3} -> {:.3} under 10x the rate on a smaller pool;",
        r1.delivered_fraction(),
        r2.delivered_fraction(),
    );
    println!("the latency CDF above is measured from real per-session completion instants.");
}
