//! Churn resilience of the overlay layer (§2.1).
//!
//! Deploys GridVine over the event-driven WAN simulator, lets a churn
//! process fail and recover peers, and shows that queries keep being
//! answered thanks to σ(p) replication and retries.
//!
//! Run with: `cargo run --release --example churn_resilience`

use gridvine_core::MediationItem;
use gridvine_netsim::churn::ChurnKind;
use gridvine_netsim::prelude::*;
use gridvine_netsim::rng;
use gridvine_pgrid::proto::{PGridMsg, PGridNode, Status};
use gridvine_pgrid::{BitString, KeyHasher, OrderPreservingHash, Topology};
use gridvine_rdf::{Term, Triple};
use rand::Rng;

fn main() {
    // 64 peers, two replicas per depth-5 path.
    let mut rtop = rng::seeded(1);
    let mut paths = Vec::new();
    for leaf in 0..32 {
        for _ in 0..2 {
            paths.push(BitString::from_u64(leaf as u64, 5));
        }
    }
    let topology = Topology::from_paths(paths, 3, &mut rtop);
    topology.validate().expect("valid");

    let mut net: Network<PGridNode<MediationItem>, PGridMsg<MediationItem>> =
        Network::new(NetworkConfig::planetlab(), 1);
    for i in 0..topology.len() {
        net.add_node(PGridNode::from_topology(
            &topology,
            i,
            SimDuration::from_secs(10),
        ));
    }

    // Preload 200 items onto all replicas.
    let hasher = OrderPreservingHash::default();
    let mut keys = Vec::new();
    for i in 0..200 {
        let value = format!("protein-{i}");
        let key = hasher.hash(&value, 24);
        let triple = Triple::new(
            format!("seq:P{i:04}").as_str(),
            "DB#Name",
            Term::literal(value),
        );
        for p in topology.responsible(&key).to_vec() {
            net.node_mut(NodeId::from_index(p.index()))
                .store_mut()
                .insert(key.clone(), MediationItem::Triple(triple.clone()));
        }
        keys.push(key);
    }

    // One simulated hour of harsh churn with a query every 20 s.
    let horizon = SimTime(3_600_000_000);
    let mut churn = ChurnProcess::generate(&ChurnConfig::harsh(), topology.len(), horizon, 2);
    println!(
        "running 1 simulated hour of harsh churn ({} fail/recover events)…",
        churn.events().len()
    );
    let mut qrng = rng::seeded(3);
    let mut submitted = 0;
    for step in 0..180 {
        let now = SimTime(step * 20_000_000);
        net.run_until(now);
        for ev in churn.due(now) {
            match ev.kind {
                ChurnKind::Fail => net.crash(ev.node),
                ChurnKind::Recover => net.recover(ev.node),
            }
        }
        let alive = net.alive_nodes();
        if alive.is_empty() {
            continue;
        }
        let origin = alive[qrng.gen_range(0..alive.len())];
        let key = keys[qrng.gen_range(0..keys.len())].clone();
        net.invoke(origin, move |node, ctx| node.start_retrieve(ctx, key));
        submitted += 1;
    }
    net.run_until_quiescent();

    let mut ok = 0;
    let mut failed = 0;
    let mut latencies = Cdf::new();
    for i in 0..topology.len() {
        for o in net.node_mut(NodeId::from_index(i)).drain_completed() {
            match o.status {
                Status::Ok => {
                    ok += 1;
                    latencies.record_duration(o.latency());
                }
                _ => failed += 1,
            }
        }
    }
    println!(
        "submitted {submitted}, answered {ok} ({:.1}%), failed {failed}",
        100.0 * ok as f64 / submitted as f64
    );
    println!(
        "answered-query latency: median {:.2}s  p95 {:.2}s",
        latencies.median(),
        latencies.quantile(0.95)
    );
    assert!(
        ok as f64 / submitted as f64 > 0.6,
        "replication + retries must keep the majority of queries alive"
    );
    println!(
        "the overlay stayed usable through {} churn events.",
        churn.events().len()
    );
}
