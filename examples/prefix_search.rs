//! Range search via the order-preserving hash (§2.2).
//!
//! "The binary keys are generated using an order-preserving hash
//! function Hash() on the data" — this is what lets GridVine resolve a
//! *prefix-constrained* triple pattern like
//! `(x?, EMBL#Organism, Aspergillus%)` by visiting only the contiguous
//! bit-prefix region the prefix maps to, instead of flooding the
//! network. Under a uniform hash the same lexical range scatters across
//! the whole key space and the operation is simply unavailable.
//!
//! Run with: `cargo run --example prefix_search`

use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, SystemError};
use gridvine_pgrid::{HashKind, PeerId};
use gridvine_rdf::{PatternTerm, Term, Triple, TriplePattern, TriplePatternQuery};
use gridvine_semantic::Schema;

/// Organisms whose records we insert; six of them share the genus
/// prefix the query asks for.
const ORGANISMS: [&str; 10] = [
    "Aspergillus niger",
    "Aspergillus nidulans",
    "Aspergillus oryzae",
    "Aspergillus flavus",
    "Aspergillus awamori",
    "Aspergillus fumigatus",
    "Escherichia coli",
    "Penicillium notatum",
    "Homo sapiens",
    "Zea mays",
];

fn build(hash: HashKind) -> GridVineSystem {
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 128,
        hash,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
        .unwrap();
    for (i, org) in ORGANISMS.iter().enumerate() {
        sys.insert_triple(
            p0,
            Triple::new(
                format!("seq:R{i:03}").as_str(),
                "EMBL#Organism",
                Term::literal(*org),
            ),
        )
        .unwrap();
    }
    sys
}

fn genus_query() -> TriplePatternQuery {
    // Note the *prefix* shape `Aspergillus%` — not `%Aspergillus%`.
    TriplePatternQuery::new(
        "x",
        TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::constant(Term::literal("Aspergillus%")),
        ),
    )
    .unwrap()
}

fn main() {
    let q = genus_query();
    println!("query: {q}\n");

    // Order-preserving hash: the prefix region is contiguous; the range
    // search visits only the peers inside it.
    let mut sys = build(HashKind::OrderPreserving);
    let opts = QueryOptions::default();
    let swept = sys
        .execute(PeerId(17), &QueryPlan::object_prefix(q.clone()), &opts)
        .expect("order-preserving hash supports prefix search");
    let (results, messages) = (swept.terms("x"), swept.stats.messages);
    println!("order-preserving hash:");
    for r in &results {
        println!("  {r}");
    }
    println!(
        "  ({} results, {} overlay messages)\n",
        results.len(),
        messages
    );
    assert_eq!(results.len(), 6, "all six Aspergillus records found");

    // The same search through the predicate key also works (it routes
    // to Hash(EMBL#Organism) and filters locally) — the range search
    // matters when the predicate key space itself is huge and the
    // object range is narrow.
    let routed = sys
        .execute(PeerId(17), &QueryPlan::pattern(q.clone()), &opts)
        .unwrap();
    let (by_predicate, pred_messages) = (routed.terms("x"), routed.stats.messages);
    assert_eq!(by_predicate, results, "both access paths agree");
    println!(
        "predicate-key access path agrees ({} messages); the range path reads \
         only the object region.\n",
        pred_messages
    );

    // Uniform hash: the lexical range is scattered; GridVine refuses
    // the range operation rather than flooding.
    let mut uniform = build(HashKind::Uniform);
    match uniform.execute(PeerId(17), &QueryPlan::object_prefix(q.clone()), &opts) {
        Err(SystemError::NotRoutable) => {
            println!("uniform hash: prefix search unavailable (NotRoutable), as designed.")
        }
        other => panic!("uniform hash must refuse range searches, got {other:?}"),
    }
}
