//! Distributed conjunctive queries over the federation (§2.3).
//!
//! "Conjunctive queries can be resolved in a similar manner, by
//! iteratively resolving each triple pattern contained in the query and
//! aggregating the sets of results retrieved."
//!
//! This example builds a three-schema bioinformatics federation, parses
//! an RDQL conjunction, and resolves it under both aggregation policies
//! — independent per-pattern sweeps vs. bound substitution — showing
//! that they return the same rows at different network costs, and that
//! the join crosses schema mappings on every pattern. It then consumes
//! the same join *incrementally* through a pull-based session, and uses
//! `limit(1)` to stop the dissemination after the first solution row —
//! strictly fewer messages on the wire.
//!
//! Run with: `cargo run --example conjunctive_join`

use gridvine_core::{
    GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryPlan, ResultEvent, Strategy,
};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{parse_query, Term, Triple};
use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

fn main() {
    let mut gridvine = GridVineSystem::new(GridVineConfig {
        peers: 64,
        ..GridVineConfig::default()
    });
    let peer = PeerId(0);

    // Three labs export overlapping nucleotide data under their own
    // schemas; manual mappings chain them: EMBL ↔ EMP ↔ PDB.
    for (schema, attrs) in [
        ("EMBL", vec!["Organism", "SequenceLength"]),
        ("EMP", vec!["SystematicName", "Length"]),
        ("PDB", vec!["Species", "ResidueCount"]),
    ] {
        gridvine
            .insert_schema(peer, Schema::new(schema, attrs))
            .unwrap();
    }
    gridvine
        .insert_mapping(
            peer,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new("Organism", "SystematicName"),
                Correspondence::new("SequenceLength", "Length"),
            ],
        )
        .unwrap();
    gridvine
        .insert_mapping(
            peer,
            "EMP",
            "PDB",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new("SystematicName", "Species"),
                Correspondence::new("Length", "ResidueCount"),
            ],
        )
        .unwrap();

    // Records: each lab knows organism + length facts for its own
    // accessions only. One Aspergillus record per vocabulary.
    for (s, p, o) in [
        ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
        ("seq:A78712", "EMBL#SequenceLength", "1042"),
        ("seq:A90001", "EMBL#Organism", "Homo sapiens"),
        ("seq:A90001", "EMBL#SequenceLength", "880"),
        ("seq:NEN94295", "EMP#SystematicName", "Aspergillus oryzae"),
        ("seq:NEN94295", "EMP#Length", "2210"),
        ("seq:1AGX", "PDB#Species", "Aspergillus awamori"),
        ("seq:1AGX", "PDB#ResidueCount", "512"),
        ("seq:4HHB", "PDB#Species", "Homo sapiens"),
        ("seq:4HHB", "PDB#ResidueCount", "141"),
    ] {
        gridvine
            .insert_triple(peer, Triple::new(s, p, Term::literal(o)))
            .unwrap();
    }

    // One conjunctive RDQL query in the EMBL vocabulary: Aspergillus
    // sequences *and* their lengths.
    let q = parse_query(
        r#"SELECT ?x, ?len WHERE (?x, <EMBL#Organism>, "%Aspergillus%"),
                                 (?x, <EMBL#SequenceLength>, ?len)"#,
    )
    .expect("well-formed RDQL");
    println!("query: {q}\n");

    let plan = QueryPlan::conjunctive(q);
    let mut reference: Option<Vec<String>> = None;
    for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
        let out = gridvine
            .execute(
                PeerId(42),
                &plan,
                &QueryOptions::new()
                    .strategy(Strategy::Iterative)
                    .join_mode(mode),
            )
            .expect("resolvable query");
        println!("{mode:?}:");
        for b in &out.rows {
            println!("  {b}");
        }
        println!(
            "  ({} rows, {} overlay messages, {} subqueries, {} reformulations)\n",
            out.rows.len(),
            out.stats.messages,
            out.stats.subqueries,
            out.stats.reformulations
        );

        let rows: Vec<String> = out.rows.iter().map(|b| b.to_string()).collect();
        assert_eq!(rows.len(), 3, "one Aspergillus join row per vocabulary");
        assert!(rows
            .iter()
            .any(|r| r.contains("A78712") && r.contains("1042")));
        assert!(rows
            .iter()
            .any(|r| r.contains("NEN94295") && r.contains("2210")));
        assert!(rows.iter().any(|r| r.contains("1AGX") && r.contains("512")));
        match &reference {
            None => reference = Some(rows),
            Some(prev) => assert_eq!(prev, &rows, "modes must agree"),
        }
    }

    println!(
        "Both policies found all three Aspergillus records — including the \
         EMP and PDB ones, reached purely through the mapping chain.\n"
    );

    // Incremental consumption: pull the same plan through a session.
    // Bound-substitution rows complete one substituted instance at a
    // time, so the consumer sees solution rows as they materialize
    // (and the Stats deltas show where the messages go).
    let options = QueryOptions::new()
        .strategy(Strategy::Iterative)
        .join_mode(JoinMode::BoundSubstitution);
    let mut session = gridvine
        .open(PeerId(42), &plan, &options)
        .expect("plan opens");
    let mut batches = 0;
    while let Some(event) = session.next_event().expect("join advances") {
        match event {
            ResultEvent::Rows(batch) => {
                batches += 1;
                for row in &batch {
                    println!("streamed: {row}");
                }
            }
            ResultEvent::Stats(_) | ResultEvent::SchemaHop { .. } => {}
        }
    }
    let streamed = session.into_outcome();
    assert_eq!(streamed.rows.len(), 3);
    assert!(batches > 1, "rows arrived across multiple batches");

    // Early termination: cap the session at one row. The remaining
    // bound-substitution groups are never resolved, so the limited run
    // sends strictly fewer messages than the full one.
    let first_only = gridvine
        .execute(PeerId(42), &plan, &options.limit(1))
        .expect("resolvable query");
    assert_eq!(first_only.rows.len(), 1);
    assert!(first_only.stats.messages < streamed.stats.messages);
    println!(
        "\nlimit(1): {} messages vs {} for the full join — the remaining \
         subqueries were never sent.",
        first_only.stats.messages, streamed.stats.messages
    );
}
