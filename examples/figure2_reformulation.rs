//! Figure 2 of the paper, step by step.
//!
//! ```text
//! SearchFor(x1? : (x1?, EMBL#Organism, %Aspergillus%))
//!   1) Search For Schema Mapping   EMBL#Organism ≡ EMP#SystematicName
//!   2) Reformulate Query           SearchFor(x2? : (x2?, EMP#SystematicName, %Aspergillus%))
//!   3) Aggregate results           x1 = {EMBL:A78712, EMBL:A78767}
//!                                  x2 = NEN94295-05
//! ```
//!
//! Run with: `cargo run --example figure2_reformulation`

use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan};
use gridvine_pgrid::PeerId;
use gridvine_rdf::{Term, Triple, TriplePatternQuery};
use gridvine_semantic::{
    reformulations, Correspondence, MappingKind, Provenance, Schema, SchemaId,
};

fn main() {
    let mut gridvine = GridVineSystem::new(GridVineConfig::default());
    let peer = PeerId(0);

    // The two schemas and the bidirectional mapping of Figure 2.
    gridvine
        .insert_schema(peer, Schema::new("EMBL", ["Organism"]))
        .unwrap();
    gridvine
        .insert_schema(peer, Schema::new("EMP", ["SystematicName"]))
        .unwrap();
    gridvine
        .insert_mapping(
            peer,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
        .unwrap();

    // The figure's data: A78712 and A78767 under EMBL, NEN94295-05
    // under EMP.
    for (s, p, o) in [
        ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
        ("seq:A78767", "EMBL#Organism", "Aspergillus nidulans"),
        (
            "seq:NEN94295-05",
            "EMP#SystematicName",
            "Aspergillus oryzae",
        ),
    ] {
        gridvine
            .insert_triple(peer, Triple::new(s, p, Term::literal(o)))
            .unwrap();
    }

    // Step 0: the original query.
    let q1 = TriplePatternQuery::example_aspergillus();
    println!("original:      {q1}");

    // Step 1+2: search for the schema mapping, reformulate.
    let refs = reformulations(gridvine.registry(), &q1, 5).expect("reformulates");
    assert_eq!(refs.len(), 2);
    let reformulated = &refs[1];
    assert_eq!(reformulated.schema, SchemaId::new("EMP"));
    println!("mapping:       EMBL#Organism ≡ EMP#SystematicName");
    println!("reformulated:  {}", reformulated.query);

    // Step 3: resolve both and aggregate.
    let opts = QueryOptions::default();
    let x1 = gridvine
        .execute(peer, &QueryPlan::pattern(q1.clone()), &opts)
        .unwrap()
        .terms(&q1.distinguished);
    let x2 = gridvine
        .execute(peer, &QueryPlan::pattern(reformulated.query.clone()), &opts)
        .unwrap()
        .terms(&reformulated.query.distinguished);
    println!("x1 = {x1:?}");
    println!("x2 = {x2:?}");

    assert_eq!(
        x1,
        vec![Term::uri("seq:A78712"), Term::uri("seq:A78767")],
        "x1 must be the two EMBL records"
    );
    assert_eq!(
        x2,
        vec![Term::uri("seq:NEN94295-05")],
        "x2 must be the EMP record"
    );
    println!("\nFigure 2 reproduced: both vocabularies answered one query.");
}
