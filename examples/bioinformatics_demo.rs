//! The §4 demonstration storyline, end to end.
//!
//! "We consider 50 distinct schemas, all related to protein and
//! nucleotide sequences. We insert data, schemas and a set of manually
//! created mappings … As more and more schemas and mappings get
//! inserted, we monitor the connectivity at the mediation layer and the
//! automatic creation of mappings … In a sparse network of mappings,
//! few results get returned initially (low recall), while more and more
//! results are retrieved as mappings get created automatically."
//!
//! This example runs that script on a generated bioinformatics corpus
//! (16 schemas so it finishes in seconds; pass a number to scale up).
//!
//! Run with: `cargo run --release --example bioinformatics_demo [schemas]`

use gridvine_core::{
    GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, SelfOrgConfig, Strategy,
};
use gridvine_netsim::rng;
use gridvine_pgrid::PeerId;
use gridvine_semantic::{MappingKind, Provenance};
use gridvine_workload::{recall, QueryConfig, QueryGenerator, Workload, WorkloadConfig};

fn main() {
    let schemas: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);

    // 1. Generate the corpus: heterogeneous schemas over shared
    //    protein-sequence entities.
    let workload = Workload::generate(WorkloadConfig {
        schemas,
        entities: 250,
        export_fraction: 0.3,
        ..WorkloadConfig::default()
    });
    println!(
        "corpus: {} schemas, {} entities, {} triples",
        workload.schemas.len(),
        workload.entities.len(),
        workload.triple_count()
    );

    // 2. Stand up the network and share everything.
    let mut sys = GridVineSystem::new(GridVineConfig {
        peers: 128,
        ..GridVineConfig::default()
    });
    let p0 = PeerId(0);
    for s in &workload.schemas {
        sys.insert_schema(p0, s.clone()).unwrap();
    }
    for s in &workload.schemas {
        sys.insert_triples(p0, workload.triples_of(s.id())).unwrap();
    }
    // A couple of manual mappings, as the demo's users enter.
    for i in 0..2.min(schemas - 1) {
        let a = workload.schemas[i].id().clone();
        let b = workload.schemas[i + 1].id().clone();
        let corrs = workload.ground_truth.correct_pairs(&a, &b);
        sys.insert_mapping(
            p0,
            a,
            b,
            MappingKind::Equivalence,
            Provenance::Manual,
            corrs,
        )
        .unwrap();
    }

    // 3. A probe workload with exact ground truth.
    let generator = QueryGenerator::new(&workload, QueryConfig::default());
    let mut qrng = rng::seeded(7);
    let probes = generator.batch(30, &mut qrng);
    let measure = |sys: &mut GridVineSystem| -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        for p in &probes {
            if p.true_answers.is_empty() {
                continue;
            }
            let origin = sys.random_peer();
            let plan = QueryPlan::search(p.query.clone());
            let opts = QueryOptions::new().strategy(Strategy::Iterative);
            if let Ok(out) = sys.execute(origin, &plan, &opts) {
                total += recall(&out.accessions(), &p.true_answers);
                n += 1;
            }
        }
        total / n.max(1) as f64
    };

    // 4. Monitor + self-organize, exactly the demo loop.
    println!("\nround  ci      mappings  created  deprecated  SCC   recall");
    let r0 = measure(&mut sys);
    println!(
        "{:>5}  {:>6}  {:>8}  {:>7}  {:>10}  {:>4.2}  {:>6.3}",
        0,
        "-",
        sys.registry().active_count(),
        "-",
        "-",
        sys.registry().largest_scc_fraction(),
        r0
    );
    let cfg = SelfOrgConfig {
        max_new_mappings: 8,
        ..SelfOrgConfig::default()
    };
    for round in 1..=8 {
        let rep = sys.self_organization_round(&cfg).unwrap();
        let rec = measure(&mut sys);
        println!(
            "{:>5}  {:>6.2}  {:>8}  {:>7}  {:>10}  {:>4.2}  {:>6.3}",
            round,
            rep.ci,
            rep.active_mappings,
            rep.created.len(),
            rep.deprecated.len(),
            rep.largest_scc_fraction,
            rec
        );
        if rep.strongly_connected && rep.created.is_empty() {
            println!("(mediation layer strongly connected — self-organization quiesces)");
            break;
        }
    }
}
