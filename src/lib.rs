//! # gridvine
//!
//! Umbrella crate for the GridVine reproduction — re-exports every layer
//! of the stack so examples and downstream users need a single
//! dependency.
//!
//! * [`netsim`] — deterministic discrete-event network simulator
//!   (the Internet layer);
//! * [`pgrid`] — the P-Grid structured overlay (the overlay layer);
//! * [`rdf`] — triples, the local triple database, RDQL-subset parser;
//! * [`semantic`] — schemas, mappings, connectivity indicator,
//!   matchers, Bayesian assessment (the mediation layer's logic);
//! * [`workload`] — the synthetic bioinformatics corpus with ground
//!   truth;
//! * [`core`] — the PDMS itself: `Update`/`SearchFor`, reformulation,
//!   self-organization, and the asynchronous deployment harness.
//!
//! See `README.md` for a tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction methodology.

pub use gridvine_core as core;
pub use gridvine_netsim as netsim;
pub use gridvine_pgrid as pgrid;
pub use gridvine_rdf as rdf;
pub use gridvine_semantic as semantic;
pub use gridvine_workload as workload;

/// One-stop prelude combining the per-crate preludes.
pub mod prelude {
    pub use gridvine_core::prelude::*;
    pub use gridvine_netsim::prelude::*;
    pub use gridvine_pgrid::prelude::*;
    pub use gridvine_rdf::prelude::*;
    pub use gridvine_semantic::prelude::*;
    pub use gridvine_workload::prelude::*;
}
